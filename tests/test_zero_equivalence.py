"""THE core claim (Sections 2.2.3, 10.1): ZeRO-DP does not change the math.

Every stage, with and without activation checkpointing, across world sizes
and bucket sizes, must produce training trajectories bitwise identical to
baseline DDP — losses and the (partitioned) optimizer state alike.
"""

import numpy as np
import pytest

from repro import Cluster, GPTConfig, ZeROConfig
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.optim.adam import AdamHyperparams
from repro.parallel.engine import EngineConfig
from repro.zero.factory import build_model_and_engine

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)


def train_run(stage, *, world=4, steps=3, checkpoint=True, bucket=2000, dtype=np.float32,
              loss_scale=1.0):
    cluster = Cluster(world, gpu=GPU, timeout_s=60.0)

    def fn(ctx):
        zero = ZeROConfig(stage=stage, checkpoint_activations=checkpoint, memory_defrag=False)
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, dtype=dtype, seed=3,
            engine_config=EngineConfig(
                adam=AdamHyperparams(lr=1e-3), bucket_numel=bucket, loss_scale=loss_scale,
            ),
        )
        losses = []
        for step in range(steps):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            losses.append(engine.train_step(ids, tgt).loss)
        if stage == 3:
            master = engine.opt_state.master.data.copy()
        elif stage in (1, 2):
            master = engine.opt_state.master.data.copy()
        else:
            master = engine.opt_state.master.data.copy()
        params = np.concatenate([p.data.numpy().reshape(-1) for p in model.parameters()]) \
            if stage != 3 else None
        return losses, master, params

    return cluster.run(fn)


@pytest.fixture(scope="module")
def ddp_reference():
    return train_run(0)


@pytest.mark.parametrize("stage", [1, 2, 3])
@pytest.mark.parametrize("checkpoint", [False, True])
def test_stage_losses_bitwise_equal_ddp(stage, checkpoint, ddp_reference):
    result = train_run(stage, checkpoint=checkpoint)
    for rank in range(4):
        assert result[rank][0] == ddp_reference[rank][0], f"rank {rank} losses diverged"


@pytest.mark.parametrize("stage", [1, 2, 3])
def test_stage_master_partitions_bitwise_equal_ddp(stage, ddp_reference):
    result = train_run(stage)
    full_master = ddp_reference[0][1]
    part = len(full_master) // 4
    for rank in range(4):
        np.testing.assert_array_equal(
            result[rank][1], full_master[rank * part : (rank + 1) * part]
        )


@pytest.mark.parametrize("stage", [1, 2])
def test_stage_fp32_params_equal_ddp(stage, ddp_reference):
    result = train_run(stage)
    for rank in range(4):
        np.testing.assert_array_equal(result[rank][2], ddp_reference[rank][2])


@pytest.mark.parametrize("bucket", [1, 100, 10**6, None])
def test_bucket_size_does_not_change_results(bucket, ddp_reference):
    """Bucketization is a scheduling choice, never a numerical one."""
    result = train_run(2, bucket=bucket)
    for rank in range(4):
        assert result[rank][0] == ddp_reference[rank][0]


@pytest.mark.parametrize("world", [2, 3])
def test_other_world_sizes_internally_consistent(world):
    ddp = train_run(0, world=world, steps=2)
    for stage in (1, 2, 3):
        z = train_run(stage, world=world, steps=2)
        for rank in range(world):
            assert z[rank][0] == ddp[rank][0]


def test_loss_scaling_transparent():
    """A static loss scale changes gradients in flight but not updates."""
    unscaled = train_run(2, loss_scale=1.0)
    scaled = train_run(2, loss_scale=256.0)
    for rank in range(4):
        np.testing.assert_allclose(scaled[rank][1], unscaled[rank][1], rtol=1e-6)


def test_fp16_training_stays_equal_across_stages():
    ddp = train_run(0, dtype=np.float16, steps=2)
    for stage in (1, 2, 3):
        z = train_run(stage, dtype=np.float16, steps=2)
        for rank in range(4):
            assert z[rank][0] == ddp[rank][0], (stage, rank)


def test_losses_decrease_over_training():
    result = train_run(2, steps=8)
    losses = result[0][0]
    assert losses[-1] < losses[0]
