"""Synthetic corpus and the loss heads (incl. vocab-parallel vs serial)."""

import numpy as np
import pytest

from repro import Cluster, GPTConfig
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.nn.loss import CausalLMLoss, VocabParallelCausalLMLoss
from repro.tensor.tensor import Tensor

GPU = GPUSpec("t", 10**9, 1e12)


class TestSyntheticCorpus:
    def test_reproducible(self):
        c = SyntheticCorpus(100, seed=1)
        a = c.sample_batch(4, 16, rank=0, step=0)
        b = SyntheticCorpus(100, seed=1).sample_batch(4, 16, rank=0, step=0)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_ranks_see_different_data(self):
        c = SyntheticCorpus(100, seed=1)
        a, _ = c.sample_batch(4, 16, rank=0, step=0)
        b, _ = c.sample_batch(4, 16, rank=1, step=0)
        assert not np.array_equal(a, b)

    def test_steps_differ(self):
        c = SyntheticCorpus(100, seed=1)
        a, _ = c.sample_batch(4, 16, rank=0, step=0)
        b, _ = c.sample_batch(4, 16, rank=0, step=1)
        assert not np.array_equal(a, b)

    def test_targets_are_shifted_inputs(self):
        c = SyntheticCorpus(50, seed=2)
        ids, tgt = c.sample_batch(2, 10, rank=0, step=0)
        np.testing.assert_array_equal(ids[:, 1:], tgt[:, :-1])

    def test_tokens_in_vocab(self):
        c = SyntheticCorpus(37, seed=3)
        ids, tgt = c.sample_batch(8, 32, rank=5, step=9)
        assert ids.min() >= 0 and ids.max() < 37
        assert tgt.min() >= 0 and tgt.max() < 37

    def test_zipf_head_is_frequent(self):
        c = SyntheticCorpus(1000, seed=4, markov_weight=0.0)
        ids, _ = c.sample_batch(32, 64, rank=0, step=0)
        counts = np.bincount(ids.reshape(-1), minlength=1000)
        assert counts[:10].sum() > counts[500:510].sum() * 3

    def test_markov_structure_is_learnable_signal(self):
        """With markov_weight=1 successors come from a small fanout set."""
        c = SyntheticCorpus(100, seed=5, markov_weight=1.0, markov_fanout=2)
        ids, _ = c.sample_batch(8, 64, rank=0, step=0)
        ok = 0
        total = 0
        for row in ids:
            for a, b in zip(row[:-1], row[1:]):
                total += 1
                ok += b in c.successors[a]
        assert ok / total > 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticCorpus(1)
        with pytest.raises(ValueError):
            SyntheticCorpus(10, markov_weight=1.5)


class TestVocabParallelLoss:
    def test_matches_serial_loss_and_grads(self):
        rng = np.random.default_rng(0)
        b, s, v = 2, 4, 12
        logits = rng.standard_normal((b, s, v)).astype(np.float64)
        targets = rng.integers(0, v, (b, s))
        serial = CausalLMLoss()
        l_ref, c_ref = serial.forward(Tensor.from_numpy(logits), Tensor.from_numpy(targets))
        d_ref = serial.backward(c_ref, loss_scale=3.0)

        def fn(ctx):
            loss_head = VocabParallelCausalLMLoss(ctx.world, ctx.rank)
            idx = ctx.world.group_index(ctx.rank)
            local = logits[..., idx * 6 : (idx + 1) * 6]
            loss, cache = loss_head.forward(
                Tensor.from_numpy(local), Tensor.from_numpy(targets)
            )
            d = loss_head.backward(cache, loss_scale=3.0)
            return float(loss.numpy()), d.numpy().copy()

        results = Cluster(2, gpu=GPU, timeout_s=30.0).run(fn)
        for rank, (loss, d) in enumerate(results):
            assert loss == pytest.approx(float(l_ref.numpy()), rel=1e-12)
            np.testing.assert_allclose(
                d, d_ref.numpy()[..., rank * 6 : (rank + 1) * 6], atol=1e-12
            )

    def test_meta_mode_records_stat_traffic(self):
        def fn(ctx):
            loss_head = VocabParallelCausalLMLoss(ctx.world, ctx.rank)
            ctx.ledger.clear()
            loss, cache = loss_head.forward(
                Tensor.meta((2, 4, 6), np.float16), Tensor.meta((2, 4), np.int64)
            )
            d = loss_head.backward(cache)
            assert d.is_meta and d.shape == (2, 4, 6)
            return len([e for e in ctx.ledger.events if e.phase == "loss-stats"])

        assert Cluster(2, gpu=GPU, timeout_s=30.0).run(fn) == [3, 3]


class TestCausalLMLossScaling:
    def test_backward_scales_gradient(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((1, 3, 5)).astype(np.float32)
        targets = rng.integers(0, 5, (1, 3))
        head = CausalLMLoss()
        _, c1 = head.forward(Tensor.from_numpy(logits), Tensor.from_numpy(targets))
        d1 = head.backward(c1, loss_scale=1.0)
        _, c2 = head.forward(Tensor.from_numpy(logits), Tensor.from_numpy(targets))
        d2 = head.backward(c2, loss_scale=8.0)
        np.testing.assert_allclose(d2.numpy(), 8 * d1.numpy(), rtol=1e-6)
