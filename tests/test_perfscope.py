"""Perfscope: critical-path analytics, stall attribution, perf-regression gate.

Acceptance properties (docs/ARCHITECTURE.md §14):

* **Exactness** — for every engine the reconstructed graph reproduces the
  engine's own clock: a serialized (non-overlapped) rank's critical path
  equals its traced step time *bit-exactly*; an offload/infinity rank's
  equals the runtime's modeled ``step_s`` bit-exactly; and the critical
  path never exceeds the sum of per-track busy time.
* **Conservation** — the stall taxonomy is a partition: per rank, the
  category seconds sum to the step time across the whole engine sweep
  (stages 0-3, offload, infinity).
* **Counterfactual honesty** — the zero-cost-comm what-if agrees with a
  genuinely re-simulated run on free links to within 1%.
* **Zero overhead** — with ``perfscope=False`` the exported trace is
  byte-identical to a perfscope-free build and the step clocks are
  unchanged by turning recording on.
* **Regression gate** — seeded baselines pass ``compare_bench``; an
  injected 20% drift on a gated metric fails it; wall-clock metrics are
  reported but never gated.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import sys

import numpy as np
import pytest

from repro import Cluster, GPTConfig, InfinityConfig, ZeROConfig
from repro.data import SyntheticCorpus
from repro.hardware.specs import DGX2, GPUSpec, InterconnectSpec
from repro.hardware.topology import ClusterTopology
from repro.perfscope import CATEGORIES, analyze, rank_scores, rank_stalls
from repro.telemetry import TelemetrySession, validate_chrome_trace
from repro.zero.factory import build_model_and_engine

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "benchmarks"))
import compare_bench  # noqa: E402

pytestmark = pytest.mark.perfscope

GPU = GPUSpec("perfscope-gpu", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=64, n_heads=4, vocab_size=128, max_seq_len=32)
SMALL = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
WORLD = 4
STEPS = 2
BATCH, SEQ = 2, 16


def run_meta(session, zero, *, world=WORLD, steps=STEPS, topology=None):
    """Meta-mode ZeRO training on a telemetry-attached cluster."""
    cluster = Cluster(world, gpu=GPU, topology=topology, telemetry=session)

    def fn(ctx):
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, meta=True, seed=0,
        )
        ids = np.zeros((BATCH, SEQ), dtype=np.int64)
        for _ in range(steps):
            engine.train_step(ids, ids)

    cluster.run(fn)
    return session


def run_infinity(session, infinity, *, steps=STEPS):
    """Real-numerics stage-3 Infinity training, world 2."""
    corpus = SyntheticCorpus(SMALL.vocab_size, seed=7)
    cluster = Cluster(2, gpu=GPU, timeout_s=60.0, telemetry=session)

    def fn(ctx):
        zero = ZeROConfig(stage=3, checkpoint_activations=False,
                          memory_defrag=False, infinity=infinity)
        model, engine = build_model_and_engine(
            ctx, SMALL, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
        )
        for step in range(steps):
            ids, tgt = corpus.sample_batch(2, 16, rank=ctx.rank, step=step)
            engine.train_step(ids, tgt)

    cluster.run(fn)
    return session


def stage_config(stage):
    return ZeROConfig(stage=stage, checkpoint_activations=False,
                      memory_defrag=False)


OFFLOAD = ZeROConfig(stage=2, offload_optimizer=True, offload_gradients=True,
                     checkpoint_activations=False, memory_defrag=False)


def assert_exact(analysis):
    """Every analyzed step: per-rank critical path == the engine's clock,
    bit-exactly, and the fleet path fits inside total busy time."""
    assert analysis.graphs
    for g in analysis.graphs:
        for rank, observed in g.observed_step_s.items():
            assert g.rank_step_s(rank) == observed
        assert g.critical_path_s <= g.total_busy_s() + 1e-12


# -- exactness: critical path == engine clock, per engine ---------------------


class TestExactness:
    @pytest.mark.parametrize("stage", [0, 1, 2, 3])
    def test_zero_stages_cp_equals_traced_step(self, stage):
        session = run_meta(TelemetrySession(perfscope=True), stage_config(stage))
        assert_exact(analyze(session))

    def test_megatron_composed_cp_equals_traced_step(self):
        """ZeRO-DP x Megatron-MP composition traces exactly too."""
        session = TelemetrySession(perfscope=True)
        cluster = Cluster(WORLD, gpu=GPU, timeout_s=60.0, telemetry=session)
        mp = 2

        def fn(ctx):
            mp_ranks = [r for r in range(WORLD) if r // mp == ctx.rank // mp]
            dp_ranks = [r for r in range(WORLD) if r % mp == ctx.rank % mp]
            zero = stage_config(1)
            model, engine = build_model_and_engine(
                ctx, SMALL, zero, dp_group=ctx.group(dp_ranks),
                mp_group=ctx.group(mp_ranks), dtype=np.float32, seed=5,
            )
            ids = np.zeros((BATCH, SEQ), dtype=np.int64)
            for _ in range(STEPS):
                engine.train_step(ids, ids % SMALL.vocab_size)

        cluster.run(fn)
        assert_exact(analyze(session))

    def test_gpipe_uncoupled_exact_coupled_shows_bubbles(self):
        """Pipeline ranks price their own sends/recvs on local clocks
        (which hide the partner's bubble); uncoupled replay reproduces the
        local clock exactly, while rendezvous coupling surfaces the bubble
        as its own stall category."""
        from repro.parallel.pipeline import GPipeEngine

        session = TelemetrySession(perfscope=True)
        cluster = Cluster(2, gpu=GPU, timeout_s=60.0, telemetry=session)

        def fn(ctx):
            engine = GPipeEngine(ctx, CFG, ctx.world, n_microbatches=2,
                                 dtype=np.float32, seed=0)
            ids = np.zeros((4, 16), dtype=np.int64)
            for _ in range(STEPS):
                engine.train_step(ids, ids % CFG.vocab_size)

        cluster.run(fn)
        assert_exact(analyze(session, couple=False))
        coupled = analyze(session)
        g = coupled.graphs[-1]
        for rank, observed in g.observed_step_s.items():
            assert g.rank_step_s(rank) >= observed
        bubble = sum(rank_stalls(g, r).get("bubble", 0.0)
                     for r in g.observed_step_s)
        assert bubble > 0.0

    def test_offload_cp_equals_runtime_model(self):
        session = run_meta(TelemetrySession(perfscope=True), OFFLOAD)
        assert_exact(analyze(session))

    @pytest.mark.parametrize("infinity", [
        InfinityConfig(optimizer_tier="nvme", grad_tier="host",
                       param_tier="device"),
        InfinityConfig(optimizer_tier="nvme", grad_tier="nvme",
                       param_tier="nvme", tile_bytes=4096),
    ], ids=["nvme-opt", "nvme-all-tiled"])
    def test_infinity_cp_equals_runtime_model(self, infinity):
        session = run_infinity(TelemetrySession(perfscope=True), infinity)
        assert_exact(analyze(session))


# -- conservation: stall taxonomy partitions the step -------------------------


SWEEP = [
    ("stage0", stage_config(0)),
    ("stage1", stage_config(1)),
    ("stage2", stage_config(2)),
    ("stage3", stage_config(3)),
    ("offload", OFFLOAD),
    ("infinity", None),  # sentinel: real-numerics infinity run
]


class TestConservation:
    @pytest.mark.parametrize("zero", [z for _, z in SWEEP],
                             ids=[n for n, _ in SWEEP])
    def test_stall_seconds_sum_to_step_time(self, zero):
        session = TelemetrySession(perfscope=True)
        if zero is None:
            run_infinity(session, InfinityConfig(
                optimizer_tier="nvme", grad_tier="host", param_tier="nvme",
                prefetch_depth=2,
            ))
        else:
            run_meta(session, zero)
        analysis = analyze(session)
        assert analysis.graphs
        for g in analysis.graphs:
            for rank in g.observed_step_s:
                stalls = rank_stalls(g, rank)
                assert set(stalls) <= set(CATEGORIES)
                assert sum(stalls.values()) == pytest.approx(
                    g.rank_step_s(rank), rel=1e-9, abs=1e-15,
                )

    def test_scores_are_bounded(self):
        session = run_meta(TelemetrySession(perfscope=True), stage_config(2))
        g = analyze(session).graphs[-1]
        for rank in g.observed_step_s:
            s = rank_scores(g, rank)
            assert 0.0 <= s.overlap_efficiency <= 1.0
            assert 0.0 <= s.compute_utilization <= 1.0
            assert 0.0 <= s.exposed_comm_pct <= 100.0


# -- counterfactual honesty ---------------------------------------------------


class TestWhatIf:
    def test_zero_comm_matches_resimulated_free_links(self):
        """The zero-cost-comm probe must agree with actually re-running the
        same training on free (infinite-bandwidth, zero-latency) links."""
        session = run_meta(TelemetrySession(perfscope=True), stage_config(2))
        wi = analyze(session).whatif_zero_comm()
        assert wi.predicted_s <= wi.baseline_s

        free = InterconnectSpec("free", 1e30, 0.0)
        node = dataclasses.replace(DGX2, gpu=GPU, intra_node=free,
                                   inter_node=free)
        topo = ClusterTopology.for_world_size(WORLD, node=node)
        free_session = run_meta(
            TelemetrySession(perfscope=True), stage_config(2), topology=topo,
        )
        g = analyze(free_session).graphs[-1]
        actual = max(g.observed_step_s.values())
        assert wi.predicted_s == pytest.approx(actual, rel=0.01)

    def test_whatif_links_repricing_is_monotone(self):
        """Re-banding PCIe to a faster link can only shrink the offload
        critical path; the baseline leg reproduces the original."""
        session = run_meta(TelemetrySession(perfscope=True), OFFLOAD)
        analysis = analyze(session)
        g = analysis.graphs[-1]
        fast = InterconnectSpec("pcie-fast", 1e12, 1e-7)
        wi = analysis.whatif_links(pcie=fast, label="pcie x10")
        assert wi.baseline_s == pytest.approx(
            max(g.rank_step_s(r) for r in g.observed_step_s), rel=1e-9,
        )
        assert wi.predicted_s <= wi.baseline_s * (1 + 1e-12)
        assert "pcie x10" in wi.describe()


# -- zero overhead when off ---------------------------------------------------


class TestZeroOverhead:
    def _trace_and_steps(self, *, perfscope):
        session = run_meta(
            TelemetrySession(perfscope=perfscope), stage_config(2),
        )
        trace = json.dumps(session.chrome_trace(), sort_keys=True)
        steps = {r: list(t.step_durations) for r, t in session.tracers.items()}
        return trace, steps

    def test_off_is_byte_identical_and_flow_free(self):
        t1, s1 = self._trace_and_steps(perfscope=False)
        t2, s2 = self._trace_and_steps(perfscope=False)
        assert t1 == t2  # deterministic and unperturbed
        assert not any(ev["ph"] in ("s", "t", "f")
                       for ev in json.loads(t1)["traceEvents"])
        t_on, s_on = self._trace_and_steps(perfscope=True)
        assert s_on == s1 == s2  # recording never moves the clocks

    def test_analysis_requires_recording(self):
        session = run_meta(TelemetrySession(), stage_config(0))
        with pytest.raises(RuntimeError, match="perfscope=True"):
            session.perfscope_analysis()


# -- chrome trace: flow events + critical-path annotation ---------------------


class TestChromeTrace:
    def test_collective_flows_link_all_member_ranks(self):
        session = run_meta(TelemetrySession(perfscope=True), stage_config(2))
        trace = session.chrome_trace()
        validate_chrome_trace(trace)
        flows = [ev for ev in trace["traceEvents"]
                 if ev["ph"] in ("s", "t", "f")]
        assert flows
        by_id = {}
        for ev in flows:
            by_id.setdefault(ev["id"], []).append(ev)
        for evs in by_id.values():
            phs = {ev["ph"] for ev in evs}
            assert "s" in phs and "f" in phs
        # A world-spanning collective links one span per member rank.
        assert max(len({ev["pid"] for ev in evs})
                   for evs in by_id.values()) == WORLD

    def test_annotated_trace_carries_critical_path_track(self):
        session = run_meta(TelemetrySession(perfscope=True), stage_config(2))
        analysis = session.perfscope_analysis()
        trace = analysis.annotate_chrome_trace(session.chrome_trace())
        validate_chrome_trace(trace)
        cp = [ev for ev in trace["traceEvents"]
              if ev["ph"] == "X" and ev.get("args", {}).get("category")]
        assert cp
        assert {ev["args"]["category"] for ev in cp} <= set(CATEGORIES)
        assert all("cname" in ev for ev in cp)
        names = [ev for ev in trace["traceEvents"]
                 if ev["ph"] == "M" and ev["name"] == "thread_name"
                 and ev["args"]["name"] == "critical-path"]
        assert names


# -- reporting: summary column, step report, gauges ---------------------------


class TestReporting:
    def test_summary_gains_exposed_comm_column(self):
        on = run_meta(TelemetrySession(perfscope=True), stage_config(2))
        assert "exposed comm" in on.summary()
        off = run_meta(TelemetrySession(), stage_config(2))
        assert "exposed comm" not in off.summary()

    def test_step_report_renders_bars_and_straggler(self):
        session = run_meta(TelemetrySession(perfscope=True), OFFLOAD)
        analysis = session.perfscope_analysis()
        report = analysis.reports[-1]
        text = report.render()
        assert "critical path" in text
        assert "#" in text  # the ASCII bars
        assert f"rank {report.straggler_rank}" in text
        assert report.critical_path_s > 0

    def test_gauges_published_to_registry(self):
        session = run_meta(TelemetrySession(perfscope=True), stage_config(3))
        session.perfscope_analysis()
        names = {row["name"] for row in session.registry.rows()}
        assert {"perfscope_critical_path_s", "perfscope_overlap_efficiency",
                "perfscope_exposed_comm_pct",
                "perfscope_compute_utilization"} <= names


# -- perf-regression gate -----------------------------------------------------


def _rows(**metrics):
    return [{"benchmark": "b", "metric": m, "value": v, "unit": "", "config": {}}
            for m, v in metrics.items()]


class TestCompareBench:
    def test_seeded_baselines_pass(self):
        """Every committed artifact gates green against its own baseline."""
        artifacts = sorted(compare_bench.OUTPUT_DIR.glob("BENCH_*.json"))
        assert artifacts, "benchmark artifacts missing"
        baselined = 0
        for path in artifacts:
            ok, table = compare_bench.check_file(path)
            assert ok, table
            if (compare_bench.BASELINE_DIR / path.name).exists():
                baselined += 1
        assert baselined >= 20  # the suite ships seeded baselines

    def test_injected_20pct_regression_fails(self):
        base = _rows(speedup=1.0)
        drifted = _rows(speedup=1.2)
        diffs = compare_bench.compare_rows(drifted, base)
        assert compare_bench.gated_failures(diffs)
        assert diffs[0]["status"] == "drift"
        assert diffs[0]["rel_delta"] == pytest.approx(0.2)

    def test_wall_clock_metrics_reported_not_gated(self):
        base = _rows(step_wall_time_mean=1.0, detector_overhead=2.0)
        cur = _rows(step_wall_time_mean=5.0, detector_overhead=9.0)
        diffs = compare_bench.compare_rows(cur, base)
        assert all(d["status"] == "wall-clock" for d in diffs)
        assert not compare_bench.gated_failures(diffs)

    def test_vanished_gated_metric_fails(self):
        diffs = compare_bench.compare_rows(_rows(), _rows(speedup=1.0))
        assert [d["status"] for d in diffs] == ["missing"]
        assert compare_bench.gated_failures(diffs)

    def test_new_metric_passes_with_note(self):
        diffs = compare_bench.compare_rows(_rows(speedup=1.0), _rows())
        assert [d["status"] for d in diffs] == ["new"]
        assert not compare_bench.gated_failures(diffs)

    def test_cli_check_and_diff_table(self, tmp_path, capsys):
        out = tmp_path / "output"
        base = tmp_path / "baselines"
        out.mkdir(), base.mkdir()
        (out / "BENCH_x.json").write_text(json.dumps(_rows(speedup=1.2)))
        (base / "BENCH_x.json").write_text(json.dumps(_rows(speedup=1.0)))
        rc = compare_bench.main([
            "--check", "--output-dir", str(out), "--baseline-dir", str(base),
        ])
        text = capsys.readouterr().out
        assert rc == 1
        assert "drift" in text and "REGRESSION" in text
        assert "bench diff: BENCH_x.json" in text
        (base / "BENCH_x.json").write_text(json.dumps(_rows(speedup=1.2)))
        rc = compare_bench.main([
            "--check", "--output-dir", str(out), "--baseline-dir", str(base),
        ])
        assert rc == 0
