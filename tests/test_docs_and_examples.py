"""Documentation and example guards: the README snippet must run, the
fast examples must execute cleanly end to end."""

import pathlib
import re
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).parent.parent


class TestReadmeSnippet:
    def test_quickstart_block_executes(self):
        """Extract the README's first ```python block and run it."""
        readme = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.S)
        assert blocks, "README must contain a python example"
        code = blocks[0]
        namespace: dict = {}
        exec(compile(code, "README.md", "exec"), namespace)  # noqa: S102
        assert "losses" in namespace  # the snippet's terminal variable

    def test_readme_mentions_key_entry_points(self):
        readme = (ROOT / "README.md").read_text()
        for needle in (
            "build_model_and_engine", "pytest benchmarks/", "EXPERIMENTS.md",
            "DESIGN.md", "repro.experiments.report",
        ):
            assert needle in readme, needle


class TestDesignDocs:
    def test_design_lists_every_experiment_runner(self):
        design = (ROOT / "DESIGN.md").read_text()
        for exp in ("Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
                    "Figure 6", "Figure 7", "Figure 8", "Table 1", "Table 2",
                    "§7", "§8", "§9"):
            assert exp in design, exp

    def test_experiments_doc_covers_every_figure(self):
        doc = (ROOT / "EXPERIMENTS.md").read_text()
        for section in ("Figure 1", "Table 1", "Table 2", "Figure 2", "Figure 3",
                        "Figure 4", "Figure 5", "Figure 6", "Figure 7", "Figure 8",
                        "Section 7", "Section 8", "Section 9", "Known deviations"):
            assert section in doc, section


FAST_EXAMPLES = [
    "quickstart.py",
    "config_advisor.py",
    "trillion_parameter_simulation.py",
    "scale_100b_simulation.py",
    "sdc_rollback.py",
    "fast_recovery.py",
    "oom_postmortem.py",
    "failslow_eviction.py",
    "infinity_trillion.py",
    "critical_path.py",
    "mission_control.py",
]


class TestExampleSmoke:
    @pytest.mark.parametrize("script", FAST_EXAMPLES)
    def test_example_runs(self, script):
        proc = subprocess.run(
            [sys.executable, str(ROOT / "examples" / script)],
            capture_output=True, text=True, timeout=180,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert proc.stdout.strip(), "examples must print their findings"

    def test_every_example_has_usage_docstring(self):
        for path in (ROOT / "examples").glob("*.py"):
            head = path.read_text()[:600]
            assert "Usage:" in head, f"{path.name} lacks a Usage: docstring"
