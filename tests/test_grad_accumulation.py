"""Gradient accumulation: micro-batching must match the equivalent big batch,
across every engine, with the stage-appropriate reduction schedule."""

import numpy as np
import pytest

from repro import Cluster, GPTConfig, ZeROConfig
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.optim.adam import AdamHyperparams
from repro.parallel.engine import EngineConfig
from repro.zero.factory import build_model_and_engine

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)
WORLD = 2


def run(stage, accum, micro_batch, optimizer_steps=2):
    cluster = Cluster(WORLD, gpu=GPU, timeout_s=60.0)

    def fn(ctx):
        zero = ZeROConfig(stage=stage, checkpoint_activations=False, memory_defrag=False)
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
            engine_config=EngineConfig(
                adam=AdamHyperparams(lr=1e-3),
                bucket_numel=2000,
                gradient_accumulation_steps=accum,
            ),
        )
        boundaries = []
        micro = 0
        for _ in range(optimizer_steps):
            for k in range(accum):
                # Micro-batches are slices of the big batch so accum x micro
                # sees exactly the same samples as one big step.
                ids, tgt = CORPUS.sample_batch(
                    micro_batch * accum, 16, rank=ctx.rank, step=len(boundaries)
                )
                lo, hi = k * micro_batch, (k + 1) * micro_batch
                r = engine.train_step(ids[lo:hi], tgt[lo:hi])
                micro += 1
                if r.is_boundary:
                    boundaries.append(micro)
        master = engine.opt_state.master.data.copy()
        return boundaries, master, engine.step_count

    return cluster.run(fn)


@pytest.mark.parametrize("stage", [0, 1, 2, 3])
def test_accumulation_matches_big_batch(stage):
    """accum=2 over half-batches == one step over the full batch.

    Token-mean losses differ per micro-batch, so gradients match up to a
    constant factor handled by the divisor; the updates must agree to
    fp32 summation-order tolerance.
    """
    accum = run(stage, accum=2, micro_batch=2)
    big = run(stage, accum=1, micro_batch=4)
    for rank in range(WORLD):
        np.testing.assert_allclose(accum[rank][1], big[rank][1], rtol=2e-5, atol=2e-6)


@pytest.mark.parametrize("stage", [0, 1, 2, 3])
def test_boundary_schedule(stage):
    boundaries, _, steps = run(stage, accum=3, micro_batch=1, optimizer_steps=2)[0]
    assert boundaries == [3, 6]
    assert steps == 2


def test_stages_agree_under_accumulation():
    """ZeRO == DDP still holds with accumulation (summation-order tolerance)."""
    ddp = run(0, accum=2, micro_batch=2)
    for stage in (1, 2, 3):
        z = run(stage, accum=2, micro_batch=2)
        full = ddp[0][1]
        part = len(full) // WORLD
        for rank in range(WORLD):
            np.testing.assert_allclose(
                z[rank][1], full[rank * part : (rank + 1) * part], rtol=2e-5, atol=2e-6
            )


def test_stage2_gradient_memory_stays_sharded_during_accumulation():
    """Stage 2 must not keep full gradients across micro-batches."""
    cluster = Cluster(WORLD, gpu=GPU, timeout_s=60.0)

    def fn(ctx):
        zero = ZeROConfig(stage=2, checkpoint_activations=False, memory_defrag=False)
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
            engine_config=EngineConfig(gradient_accumulation_steps=3, bucket_numel=1000),
        )
        ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=0)
        engine.train_step(ids, tgt)  # non-boundary micro-step
        live = sum(p.grad.size for p in engine.layout.parameters if p.grad is not None)
        return live

    assert cluster.run(fn) == [0, 0]  # reduced and freed every micro-step


def test_stage1_keeps_gradients_across_micro_steps():
    cluster = Cluster(WORLD, gpu=GPU, timeout_s=60.0)

    def fn(ctx):
        zero = ZeROConfig(stage=1, checkpoint_activations=False, memory_defrag=False)
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
            engine_config=EngineConfig(gradient_accumulation_steps=3),
        )
        ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=0)
        engine.train_step(ids, tgt)
        ctx.ledger.clear()
        engine.train_step(ids, tgt)  # still non-boundary
        return ctx.ledger.nominal_bytes()  # no reduction traffic yet

    assert cluster.run(fn) == [0.0, 0.0]


def test_invalid_accumulation_rejected():
    cluster = Cluster(1, gpu=GPU)

    def fn(ctx):
        with pytest.raises(ValueError, match="accumulation"):
            build_model_and_engine(
                ctx, CFG, ZeROConfig(stage=0, memory_defrag=False),
                dp_group=ctx.world, dtype=np.float32, seed=0,
                engine_config=EngineConfig(gradient_accumulation_steps=0),
            )
        return True

    assert cluster.run(fn) == [True]
