"""Device, host memory, MD defrag routing, contiguous regions."""

import pytest

from repro.hardware.specs import GPUSpec
from repro.memsim.device import ContiguousRegion, Device, HostMemory
from repro.memsim.errors import FragmentationError, InvalidFreeError, OutOfMemoryError

MB = 1024 * 1024
SPEC = GPUSpec("t", 64 * MB, 1e12)


def test_device_accounting_basics():
    d = Device(SPEC)
    e = d.alloc(1 * MB)
    assert d.allocated_bytes == 1 * MB
    assert d.free_bytes == SPEC.memory_bytes - 1 * MB
    d.free(e)
    assert d.allocated_bytes == 0
    assert d.reserved_bytes == 1 * MB  # cached
    assert d.max_reserved_bytes == 1 * MB


def test_device_without_cache():
    d = Device(SPEC, use_cache=False)
    e = d.alloc(1 * MB)
    d.free(e)
    assert d.reserved_bytes == 0


def test_host_memory_accounting():
    h = HostMemory(capacity=10 * MB)
    handle = h.alloc(4 * MB)
    assert h.allocated_bytes == 4 * MB
    h.free(handle)
    assert h.allocated_bytes == 0
    assert h.max_allocated_bytes == 4 * MB


def test_host_oom_and_double_free():
    h = HostMemory(capacity=1 * MB)
    with pytest.raises(OutOfMemoryError):
        h.alloc(2 * MB)
    handle = h.alloc(MB // 2)
    h.free(handle)
    with pytest.raises(InvalidFreeError):
        h.free(handle)


class TestContiguousRegion:
    def test_bump_alloc_and_reset(self):
        d = Device(SPEC)
        r = d.preallocate_region(8 * MB)
        h1 = r.alloc(3 * MB)
        r.alloc(3 * MB)
        assert r.used_bytes == 6 * MB
        with pytest.raises(OutOfMemoryError):
            r.alloc(3 * MB)
        r.free_slot(h1)
        r.reset()
        assert r.used_bytes == 0
        r.alloc(8 * MB)  # full region reusable after reset
        r.release()

    def test_release_returns_memory(self):
        d = Device(SPEC)
        before = d.raw.allocated_bytes
        r = d.preallocate_region(8 * MB)
        assert d.raw.allocated_bytes == before + 8 * MB
        r.release()
        assert d.raw.allocated_bytes == before

    def test_use_after_release_raises(self):
        d = Device(SPEC)
        r = d.preallocate_region(1 * MB)
        r.release()
        with pytest.raises(InvalidFreeError):
            r.alloc(1)


class TestMemoryDefrag:
    """ZeRO-R MD: long-lived tensors routed into a dedicated region."""

    def test_md_routes_matching_tags(self):
        d = Device(SPEC)
        d.enable_defrag(8 * MB, lambda tag: tag.endswith(".grad"))
        e_grad = d.alloc(1 * MB, tag="w.grad")
        e_act = d.alloc(1 * MB, tag="activation")
        assert e_grad.pool == "md"
        assert e_act.pool == "main"
        d.free(e_grad)
        d.free(e_act)

    def test_md_overflow_falls_back_to_heap(self):
        d = Device(SPEC)
        d.enable_defrag(1 * MB, lambda tag: tag.endswith(".grad"))
        big = d.alloc(2 * MB, tag="w.grad")  # doesn't fit the region
        assert big.pool == "main"
        d.free(big)

    def test_md_prevents_fragmentation_oom(self):
        """The Section 6.3 scenario: interleaved short/long lifetimes
        fragment the heap without MD; with MD the same workload fits."""

        def run(with_md: bool) -> bool:
            d = Device(GPUSpec("t", 32 * MB, 1e12), use_cache=False)
            if with_md:
                d.enable_defrag(11 * MB, lambda tag: tag == "ckpt")
            try:
                long_lived = []
                for i in range(10):
                    # Growing short-lived buffer then a long-lived
                    # checkpoint: the interleaving strands checkpoints all
                    # over the heap (Section 6.3's scenario).
                    act = d.alloc((2 + i) * MB, tag="act")
                    long_lived.append(d.alloc(1 * MB, tag="ckpt"))
                    d.free(act)
                # Now a large contiguous request (e.g. a fused buffer).
                fused = d.alloc(14 * MB, tag="fused")
                d.free(fused)
                for e in long_lived:
                    d.free(e)
                return True
            except FragmentationError:
                return False

        assert run(with_md=False) is False
        assert run(with_md=True) is True

    def test_disable_defrag_requires_empty_region(self):
        d = Device(SPEC)
        d.enable_defrag(1 * MB, lambda tag: tag == "x")
        e = d.alloc(1000, tag="x")
        with pytest.raises(ValueError):
            d.disable_defrag()
        d.free(e)
        d.disable_defrag()
        assert d.md_region_bytes == 0

    def test_double_enable_rejected(self):
        d = Device(SPEC)
        d.enable_defrag(1 * MB, lambda tag: False)
        with pytest.raises(ValueError):
            d.enable_defrag(1 * MB, lambda tag: False)
