"""Memory observatory tests: provenance tracking, allocator introspection,
leak sentinel, OOM postmortems, and the zero-overhead-off contract."""

import json

import numpy as np
import pytest

from repro import memprof
from repro.hardware.specs import GPUSpec
from repro.memprof import MemoryProfiler, Workload
from repro.memprof.provenance import _NOOP
from repro.memsim.device import Device, HostMemory
from repro.memsim.errors import FragmentationError, OutOfMemoryError
from repro.nn.transformer import GPTConfig
from repro.telemetry import MetricsRegistry, Tracer, chrome_trace, validate_chrome_trace
from repro.utils.units import GB

pytestmark = pytest.mark.memprof

MB = 1024 * 1024


def tiny_device(mb: int = 64, *, use_cache: bool = True) -> Device:
    return Device(GPUSpec("memprof-test", mb * MB, 1e12), use_cache=use_cache)


# ---------------------------------------------------------------------------
# Allocator introspection edge cases
# ---------------------------------------------------------------------------


class TestAllocatorIntrospection:
    def test_fragmentation_ratio_empty_device(self):
        device = tiny_device()
        assert memprof.fragmentation_ratio(device) == 0.0
        stats = memprof.device_stats(device)
        assert stats.allocated_bytes == 0
        assert stats.cached_bytes == 0
        assert stats.largest_free_block == stats.capacity

    def test_fragmentation_ratio_roundtrip_to_zero(self):
        """One hole is no fragmentation — before, during, and after use."""
        device = tiny_device(use_cache=False)
        a = device.alloc(8 * MB, tag="a")
        b = device.alloc(8 * MB, tag="b")
        device.free(a)  # hole at the front + tail hole -> fragmented
        assert memprof.fragmentation_ratio(device) > 0.0
        device.free(b)
        assert memprof.fragmentation_ratio(device) == 0.0

    def test_split_block_coalescing_after_free(self):
        """Freeing neighbours must merge holes back into one segment."""
        device = tiny_device(use_cache=False)
        a = device.alloc(8 * MB, tag="a")
        b = device.alloc(8 * MB, tag="b")
        c = device.alloc(8 * MB, tag="c")
        device.free(b)
        snap = device.raw.snapshot()
        assert len(snap["free_segments"]) == 2  # the b-hole + the tail
        device.free(a)  # must coalesce with the b-hole
        snap = device.raw.snapshot()
        assert len(snap["free_segments"]) == 2
        assert snap["largest_free"] >= 16 * MB
        device.free(c)  # everything merges into one capacity-sized hole
        snap = device.raw.snapshot()
        assert len(snap["free_segments"]) == 1
        assert snap["free_segments"][0]["size"] == snap["capacity"]
        assert snap["allocated"] == 0 and not snap["live_blocks"]

    def test_caching_allocator_snapshot(self):
        device = tiny_device()
        e = device.alloc(4 * MB, tag="x")
        snap = device.cache.snapshot()
        assert snap["allocator"] == "caching"
        assert snap["allocated"] == e.size
        assert snap["reserved"] >= snap["allocated"]
        device.free(e)
        snap = device.cache.snapshot()
        assert snap["allocated"] == 0
        assert snap["cached"] > 0  # the block went to cache, not the heap
        assert snap["backing"]["allocated"] > 0

    def test_device_snapshot_shape(self):
        device = tiny_device()
        e = device.alloc(1 * MB, tag="x")
        snap = device.snapshot()
        for key in ("device", "capacity", "allocated", "reserved", "cached",
                    "max_allocated", "largest_free_block", "heap"):
            assert key in snap, key
        assert snap["allocated"] == e.size
        device.free(e)


# ---------------------------------------------------------------------------
# Provenance
# ---------------------------------------------------------------------------


class TestProvenance:
    def test_category_scope_attribution(self):
        device = tiny_device()
        with MemoryProfiler(device) as prof:
            with memprof.category("optimizer_state", site="adam-m"):
                e = device.alloc(4 * MB, tag="m")
            assert prof.live_by_category["optimizer_state"] == e.size
            [row] = prof.live_blocks()
            assert row["site"] == "adam-m" and row["category"] == "optimizer_state"
            device.free(e)
            assert prof.live_by_category["optimizer_state"] == 0
            prof.verify_accounting()

    def test_unknown_category_rejected_even_when_off(self):
        assert not memprof.profiling_active()
        with pytest.raises(ValueError):
            memprof.category("paramms_fp16")

    def test_caching_reuse_records_new_owner(self):
        """A cache-hit block must carry the *new* owner's provenance."""
        device = tiny_device()
        with MemoryProfiler(device) as prof:
            with memprof.category("activation", site="old-owner"):
                e1 = device.alloc(4 * MB, tag="act")
            device.free(e1)  # parked in the cache
            hits_before = device.cache.stats().n_cache_hits
            with memprof.category("param_fp16", site="new-owner"):
                e2 = device.alloc(4 * MB, tag="weights")
            assert device.cache.stats().n_cache_hits == hits_before + 1
            [row] = prof.live_blocks()
            assert row["category"] == "param_fp16"
            assert row["site"] == "new-owner"
            assert prof.live_by_category["activation"] == 0
            assert prof.live_by_category["param_fp16"] == e2.size
            device.free(e2)

    def test_recategorize_moves_bytes(self):
        device = tiny_device()
        with MemoryProfiler(device, self_check=True) as prof:
            with memprof.category("activation", site="backward-tmp"):
                e = device.alloc(2 * MB, tag="tmp")
            prof.recategorize(e, "grad_fp16", site="layer0.w.grad")
            assert prof.live_by_category["activation"] == 0
            assert prof.live_by_category["grad_fp16"] == e.size
            [row] = prof.live_blocks()
            assert row["site"] == "layer0.w.grad"
            prof.verify_accounting()
            device.free(e)

    def test_classify_tag_fallback(self):
        assert memprof.classify_tag("layer0.w.grad", "") == "grad_fp16"
        assert memprof.classify_tag("grad-bucket", "") == "comm_buffer"
        assert memprof.classify_tag("pa-shard", "") == "activation_ckpt"
        assert memprof.classify_tag("adam-master", "") == "optimizer_state"
        assert memprof.classify_tag("x", "forward") == "activation"

    def test_host_pool_provenance(self):
        host = HostMemory(64 * MB, name="host-test")
        with MemoryProfiler(host, self_check=True) as prof:
            with memprof.category("optimizer_state", site="host-adam"):
                h = host.alloc(8 * MB, tag="m")
            assert prof.live_by_category["optimizer_state"] == 8 * MB
            host.free(h)
            assert prof.live_by_category["optimizer_state"] == 0
            prof.verify_accounting()


# ---------------------------------------------------------------------------
# Zero overhead when disabled
# ---------------------------------------------------------------------------


class TestZeroOverheadOff:
    def test_category_is_shared_noop_singleton(self):
        assert not memprof.profiling_active()
        assert memprof.category("param_fp16") is _NOOP
        assert memprof.category("temp", site="x") is _NOOP
        before = memprof.current_phase()  # whatever a prior profiled run left
        memprof.set_phase("a-phase-nobody-uses")  # guarded no-op while off
        assert memprof.current_phase() == before

    def test_no_tracking_state_without_profiler(self):
        device = tiny_device()
        assert device.profiler is None
        # Class attribute only — attaching nothing allocates nothing.
        assert "profiler" not in device.__dict__

    def test_allocator_behaviour_byte_identical(self):
        """The same alloc/free trace on profiled and bare devices must leave
        byte-identical allocator state (sizes, cache, peaks, fragmentation)."""

        def trace(device):
            live = []
            with memprof.category("activation", site="trace"):
                for i in range(6):
                    live.append(device.alloc((1 + i) * MB, tag=f"t{i}"))
            for e in live[::2]:
                device.free(e)
            big = device.alloc(7 * MB, tag="big")
            device.free(big)
            for e in live[1::2]:
                device.free(e)

        bare, profiled = tiny_device(), tiny_device()
        trace(bare)
        with MemoryProfiler(profiled, self_check=True):
            trace(profiled)
        bare_snap, prof_snap = bare.snapshot(), profiled.snapshot()
        bare_snap["device"] = prof_snap["device"] = ""
        bare_snap["heap"]["backing"]["name"] = prof_snap["heap"]["backing"]["name"] = ""
        assert bare_snap == prof_snap


# ---------------------------------------------------------------------------
# Leak sentinel + step stability
# ---------------------------------------------------------------------------


class TestLeakSentinel:
    def test_monotonic_growth_flagged(self):
        device = tiny_device()
        with MemoryProfiler(device) as prof:
            kept = []
            for _ in range(4):
                with memprof.category("optimizer_state", site="leaky"):
                    kept.append(device.alloc(1 * MB, tag="leak"))
                with memprof.category("activation", site="steady"):
                    act = device.alloc(2 * MB, tag="act")
                device.free(act)
                prof.note_step()
            assert prof.leak_suspects(3) == ["optimizer_state"]
            for e in kept:
                device.free(e)

    def test_steady_state_not_flagged(self):
        device = tiny_device()
        with MemoryProfiler(device) as prof:
            for _ in range(5):
                with memprof.category("activation"):
                    e = device.alloc(1 * MB, tag="act")
                device.free(e)
                prof.note_step()
            assert prof.leak_suspects(3) == []

    def test_snapshot_stable_across_full_train_step(self):
        """A steady-state meta-mode engine must return every category to its
        step-boundary baseline; the engines call ``note_step`` themselves."""
        from repro.experiments.common import virtual_groups
        from repro.runtime import virtual_rank_context
        from repro.tensor.tensor import Tensor
        from repro.zero.config import ZeROConfig
        from repro.zero.factory import build_model_and_engine

        cfg = GPTConfig(n_layers=2, hidden=64, n_heads=4, vocab_size=128,
                        max_seq_len=32)
        ctx = virtual_rank_context(4)
        dp_group, _ = virtual_groups(ctx, 4, 1)
        with MemoryProfiler(ctx.device, self_check=True) as prof:
            model, engine = build_model_and_engine(
                ctx, cfg, ZeROConfig(stage=2, checkpoint_activations=True),
                dp_group=dp_group, meta=True,
            )
            ids = Tensor.meta((2, 32), np.int64, device=ctx.device)
            targets = Tensor.meta((2, 32), np.int64, device=ctx.device)
            boundaries = []
            for _ in range(3):
                engine.train_step(ids, targets)
                boundaries.append(dict(prof.live_by_category))
            assert boundaries[0] == boundaries[1] == boundaries[2]
            assert len(prof._step_history) == 3  # engine called note_step
            assert prof.leak_suspects(2) == []
            snap = prof.snapshot()
            memprof.validate_snapshot(snap)
            json.dumps(snap)  # fully serializable


# ---------------------------------------------------------------------------
# OOM enrichment and postmortems
# ---------------------------------------------------------------------------


class TestOOMDiagnostics:
    def test_oom_message_has_device_totals_without_memprof(self):
        """Satellite bugfix: totals appear even with no profiler attached."""
        device = tiny_device(8)
        keep = device.alloc(5 * MB, tag="keep")
        with pytest.raises(OutOfMemoryError) as info:
            device.alloc(16 * MB, tag="too-big")
        exc = info.value
        msg = str(exc)
        assert "device totals" in msg
        assert "capacity" in msg and "largest free block" in msg
        assert exc.capacity == 8 * MB
        assert exc.allocated == keep.size
        assert exc.postmortem is None  # no observatory attached
        device.free(keep)

    def test_host_oom_message_has_totals(self):
        host = HostMemory(4 * MB, name="small-host")
        h = host.alloc(3 * MB, tag="keep")
        with pytest.raises(OutOfMemoryError) as info:
            host.alloc(2 * MB, tag="too-big")
        assert "device totals" in str(info.value)
        host.free(h)

    def test_fragmentation_postmortem_end_to_end(self):
        """Section 6.3 shape: interleaved lifetimes fragment the heap; the
        postmortem must attribute the live bytes, render the fragmentation
        verdict, and name the MD knob that demonstrably fixes the workload."""

        def workload(device):
            ckpts = []
            for i in range(10):
                with memprof.category("activation", site="fwd-act"):
                    act = device.alloc((2 + i) * MB, tag="act")
                with memprof.category("activation_ckpt", site="act-ckpt"):
                    ckpts.append(device.alloc(1 * MB, tag="ckpt"))
                device.free(act)
            with memprof.category("temp", site="fused-buffer"):
                fused = device.alloc(14 * MB, tag="fused")
            device.free(fused)

        device = Device(GPUSpec("frag", 32 * MB, 1e12), use_cache=False)
        with MemoryProfiler(device, self_check=True):
            with pytest.raises(FragmentationError) as info:
                workload(device)
        report = info.value.postmortem
        assert report is not None
        # (b) the capacity-vs-fragmentation verdict.
        assert report.verdict == "fragmentation"
        assert info.value.free >= info.value.requested
        # (a) >= 90% of live bytes attributed (here: all of them).
        assert report.untracked_bytes == 0
        assert report.tracked_bytes == device.allocated_bytes
        assert report.tracked_bytes / (report.tracked_bytes + report.untracked_bytes) >= 0.9
        by_cat = {c.category: c.live_bytes for c in report.categories}
        assert by_cat["activation_ckpt"] == 10 * MB  # the correct category
        # (c) the MD knob is named first...
        assert "memory_defrag" in report.knobs[0]
        assert "memory_defrag" in str(info.value)  # surfaced in the message
        # ...and demonstrably makes the same workload fit.
        fixed = Device(GPUSpec("frag", 32 * MB, 1e12), use_cache=False)
        fixed.enable_defrag(11 * MB, lambda tag: tag == "ckpt")
        with MemoryProfiler(fixed, self_check=True):
            workload(fixed)  # no exception

        # Structured render + JSON forms.
        text = report.render()
        assert "FRAGMENTATION" in text and "activation_ckpt" in text
        blob = report.to_json()
        assert blob["schema"] == "repro.memprof/oom-postmortem-v1"
        json.dumps(blob)

    def test_capacity_postmortem_advisor_hint_fits(self):
        """A stage-0 config that cannot hold its optimizer states gets a
        capacity verdict and an advisor hint whose config actually fits."""
        from repro.analysis.advisor import recommend_zero_config
        from repro.experiments.common import meta_memory_step
        from repro.zero.config import ZeROConfig

        model = GPTConfig(n_layers=160, hidden=8192, n_heads=64)
        n_gpus, mp = 400, 16
        result = meta_memory_step(
            model, ZeROConfig(stage=0, checkpoint_activations=True),
            n_gpus=n_gpus, mp=mp, batch=8, memprof=True,
        )
        assert not result.fits
        assert "stage" in result.oom_hint  # names a concrete ZeRO knob
        advice = recommend_zero_config(
            model, n_gpus=n_gpus, mp=mp, budget_bytes=int(32 * GB)
        )
        assert advice.config.stage >= 1 and advice.batch > 0
        assert f"stage {advice.config.stage}" in result.oom_hint
        # The recommended config makes the *same* workload (same batch) fit.
        rerun = meta_memory_step(
            model, advice.config, n_gpus=n_gpus, mp=mp, batch=8, memprof=True,
        )
        assert rerun.fits and rerun.memprof_ok


# ---------------------------------------------------------------------------
# Snapshot schema + telemetry bridge (CI smoke)
# ---------------------------------------------------------------------------


class TestTelemetryBridge:
    def test_snapshot_schema_and_chrome_trace_smoke(self):
        tracer = Tracer(rank=0)
        registry = MetricsRegistry()
        device = tiny_device()
        with MemoryProfiler(device, tracer=tracer, registry=registry,
                            self_check=True) as prof:
            with memprof.category("param_fp16", site="weights"):
                w = device.alloc(4 * MB, tag="w")
            with memprof.category("activation", site="fwd"):
                a = device.alloc(2 * MB, tag="a")
            device.free(a)

            snap = prof.snapshot()
            memprof.validate_snapshot(snap)
            assert snap["schema"] == memprof.SNAPSHOT_SCHEMA
            assert snap["categories"]["param_fp16"]["live_bytes"] == w.size
            json.dumps(snap)
            device.free(w)

        # Chrome trace: memprof counter tracks validate as a real artifact.
        trace = chrome_trace([tracer])
        validate_chrome_trace(trace)
        counter_names = {
            ev["name"] for ev in trace["traceEvents"] if ev.get("ph") == "C"
        }
        assert "memprof/param_fp16" in counter_names
        assert "memprof/activation" in counter_names

        # MetricsRegistry gauges: live back to zero, peaks retained.
        live = registry.gauge("memprof_live_bytes",
                              category="param_fp16", pool=device.name)
        peak = registry.gauge("memprof_peak_bytes",
                              category="param_fp16", pool=device.name)
        assert live.value == 0.0
        assert peak.value == 4 * MB

    def test_workload_threads_through_to_report(self):
        model = GPTConfig(n_layers=2, hidden=64, n_heads=4)
        device = tiny_device(4)
        prof = MemoryProfiler(device, workload=Workload(model=model, n_gpus=8))
        try:
            with pytest.raises(OutOfMemoryError) as info:
                with memprof.category("param_fp16"):
                    device.alloc(64 * MB, tag="w")
            report = info.value.postmortem
            assert report is not None and report.verdict == "capacity"
            assert report.advisor_hint  # the advisor had a workload to chew on
        finally:
            prof.detach()
