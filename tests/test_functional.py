"""Primitive ops: forward values, backward gradchecks, meta propagation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import functional as F
from repro.tensor.tensor import Tensor


def t64(a):
    return Tensor.from_numpy(np.asarray(a, dtype=np.float64))


def numerical_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f wrt numpy array x."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        xp, xm = x.copy(), x.copy()
        xp[i] += eps
        xm[i] -= eps
        g[i] = (f(xp) - f(xm)) / (2 * eps)
        it.iternext()
    return g


class TestShapeOps:
    def test_reshape_values_and_view(self):
        x = t64(np.arange(12).reshape(3, 4))
        y = F.reshape(x, (2, 6))
        np.testing.assert_array_equal(y.numpy().reshape(-1), np.arange(12))
        assert y.extent is None  # view: no allocation

    def test_reshape_infer_dim(self):
        x = t64(np.arange(12))
        assert F.reshape(x, (3, -1)).shape == (3, 4)

    def test_reshape_bad_size(self):
        with pytest.raises(ValueError):
            F.reshape(t64(np.arange(12)), (5, 3))

    def test_transpose(self):
        x = t64(np.arange(6).reshape(2, 3))
        y = F.transpose(x, (1, 0))
        np.testing.assert_array_equal(y.numpy(), x.numpy().T)

    def test_index_and_stack_axis0_roundtrip(self):
        x = t64(np.arange(24).reshape(3, 2, 4))
        parts = [F.index_axis0(x, i) for i in range(3)]
        back = F.stack_axis0(parts)
        np.testing.assert_array_equal(back.numpy(), x.numpy())

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            F.index_axis0(t64(np.zeros((2, 2))), 2)

    def test_slice_last(self):
        x = t64(np.arange(10).reshape(2, 5))
        y = F.slice_last(x, 1, 4)
        np.testing.assert_array_equal(y.numpy(), x.numpy()[:, 1:4])
        with pytest.raises(IndexError):
            F.slice_last(x, 3, 6)

    def test_cast(self):
        x = t64([1.5, 2.5])
        y = F.cast(x, np.float16)
        assert y.dtype == np.float16


class TestMatmul:
    def test_values(self):
        a, b = t64(np.ones((2, 3))), t64(np.full((3, 4), 2.0))
        np.testing.assert_array_equal(F.matmul(a, b).numpy(), np.full((2, 4), 6.0))

    def test_batched_broadcast(self):
        a = t64(np.random.default_rng(0).standard_normal((5, 2, 3)))
        b = t64(np.random.default_rng(1).standard_normal((3, 4)))
        y = F.matmul(a, b)
        assert y.shape == (5, 2, 4)
        np.testing.assert_allclose(y.numpy(), a.numpy() @ b.numpy())

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            F.matmul(t64(np.zeros((2, 3))), t64(np.zeros((4, 5))))

    def test_fp16_accumulates_in_fp32(self):
        # 2048 x (1/2048) in fp16: naive fp16 accumulation loses most of it.
        n = 2048
        a = Tensor.from_numpy(np.full((1, n), 1.0, np.float16))
        b = Tensor.from_numpy(np.full((n, 1), 1.0 / n, np.float16))
        y = F.matmul(a, b)
        assert y.dtype == np.float16
        assert float(y.numpy()[0, 0]) == pytest.approx(1.0, rel=1e-3)


class TestElementwise:
    def test_add_broadcast(self):
        y = F.add(t64(np.ones((2, 3))), t64(np.arange(3.0)))
        assert y.shape == (2, 3)
        np.testing.assert_array_equal(y.numpy(), np.tile(1 + np.arange(3.0), (2, 1)))

    def test_mul(self):
        y = F.mul(t64([2.0, 3.0]), t64([4.0, 5.0]))
        np.testing.assert_array_equal(y.numpy(), [8.0, 15.0])

    def test_scale(self):
        y = F.scale(t64([2.0, -4.0]), 0.5)
        np.testing.assert_array_equal(y.numpy(), [1.0, -2.0])

    def test_sum_to_leading_and_broadcast_dims(self):
        x = t64(np.ones((4, 3, 5)))
        np.testing.assert_array_equal(F.sum_to(x, (5,)).numpy(), np.full(5, 12.0))
        np.testing.assert_array_equal(
            F.sum_to(x, (1, 3, 5)).numpy(), np.full((1, 3, 5), 4.0)
        )

    def test_sum_to_incompatible(self):
        with pytest.raises(ValueError):
            F.sum_to(t64(np.ones((4, 3))), (2,))


class TestActivationGradchecks:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_gelu_grad(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((3, 4))
        r = rng.standard_normal((3, 4))
        dy = F.gelu_grad(t64(x), t64(r))
        num = numerical_grad(lambda xv: float((F.gelu(t64(xv)).numpy() * r).sum()), x)
        np.testing.assert_allclose(dy.numpy(), num, atol=1e-7)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_softmax_grad(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((2, 5))
        r = rng.standard_normal((2, 5))
        y = F.softmax(t64(x))
        dx = F.softmax_grad(y, t64(r))
        num = numerical_grad(lambda xv: float((F.softmax(t64(xv)).numpy() * r).sum()), x)
        np.testing.assert_allclose(dx.numpy(), num, atol=1e-7)

    def test_softmax_rows_sum_to_one(self):
        y = F.softmax(t64(np.random.default_rng(0).standard_normal((4, 7)) * 10))
        np.testing.assert_allclose(y.numpy().sum(axis=-1), 1.0, rtol=1e-12)

    def test_softmax_stable_for_large_inputs(self):
        y = F.softmax(Tensor.from_numpy(np.array([[1e4, 1e4 - 1]], np.float32)))
        assert np.all(np.isfinite(y.numpy()))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_layernorm_grads(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((3, 8))
        gamma = rng.standard_normal(8)
        beta = rng.standard_normal(8)
        r = rng.standard_normal((3, 8))

        def loss(xv, gv=gamma, bv=beta):
            y, _, _ = F.layernorm(t64(xv), t64(gv), t64(bv))
            return float((y.numpy() * r).sum())

        y, mean, rstd = F.layernorm(t64(x), t64(gamma), t64(beta))
        dx, dgamma, dbeta = F.layernorm_grad(t64(x), t64(gamma), mean, rstd, t64(r))
        np.testing.assert_allclose(dx.numpy(), numerical_grad(lambda v: loss(v), x), atol=1e-6)
        np.testing.assert_allclose(
            dgamma.numpy(), numerical_grad(lambda g: loss(x, gv=g), gamma), atol=1e-6
        )
        np.testing.assert_allclose(
            dbeta.numpy(), numerical_grad(lambda b: loss(x, bv=b), beta), atol=1e-6
        )

    def test_layernorm_normalizes(self):
        x = t64(np.random.default_rng(0).standard_normal((5, 16)) * 3 + 7)
        y, _, _ = F.layernorm(x, t64(np.ones(16)), t64(np.zeros(16)))
        np.testing.assert_allclose(y.numpy().mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(y.numpy().std(axis=-1), 1.0, atol=1e-4)


class TestMask:
    def test_causal_mask_fills_future(self):
        x = t64(np.zeros((2, 3, 3)))
        y = F.causal_mask_fill(x, value=-99.0)
        upper = np.triu(np.ones((3, 3), bool), k=1)
        assert np.all(y.numpy()[..., upper] == -99.0)
        assert np.all(y.numpy()[..., ~upper] == 0.0)

    def test_causal_mask_zero_grad(self):
        g = t64(np.ones((3, 3)))
        z = F.causal_mask_zero_grad(g)
        assert z.numpy().sum() == 6.0  # lower triangle incl. diagonal

    def test_mask_requires_square(self):
        with pytest.raises(ValueError):
            F.causal_mask_fill(t64(np.zeros((2, 3))))


class TestEmbeddingAndXent:
    def test_embedding_lookup_and_grad(self):
        table = t64(np.arange(12.0).reshape(4, 3))
        ids = Tensor.from_numpy(np.array([[0, 2], [2, 3]], np.int64))
        y = F.embedding_lookup(table, ids)
        np.testing.assert_array_equal(y.numpy()[0, 1], [6, 7, 8])
        dy = t64(np.ones((2, 2, 3)))
        g = F.embedding_grad(table, ids, dy)
        # Row 2 appears twice -> grad 2 per element.
        np.testing.assert_array_equal(g.numpy()[2], [2, 2, 2])
        np.testing.assert_array_equal(g.numpy()[1], [0, 0, 0])

    def test_cross_entropy_matches_manual(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((5, 7)).astype(np.float32)
        targets = rng.integers(0, 7, 5)
        loss, probs = F.cross_entropy(
            Tensor.from_numpy(logits), Tensor.from_numpy(targets)
        )
        ref = -np.log(
            np.exp(logits - logits.max(-1, keepdims=True))
            / np.exp(logits - logits.max(-1, keepdims=True)).sum(-1, keepdims=True)
        )[np.arange(5), targets].mean()
        assert float(loss.numpy()) == pytest.approx(float(ref), rel=1e-5)

    def test_cross_entropy_grad(self):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((4, 6))
        targets = rng.integers(0, 6, 4)

        def loss_of(lv):
            loss, _ = F.cross_entropy(t64(lv), Tensor.from_numpy(targets))
            return float(loss.numpy())

        _, probs = F.cross_entropy(t64(logits), Tensor.from_numpy(targets))
        grad = F.cross_entropy_grad(probs, Tensor.from_numpy(targets), dtype=np.float64)
        np.testing.assert_allclose(grad.numpy(), numerical_grad(loss_of, logits), atol=1e-6)

    def test_uniform_logits_give_log_vocab(self):
        loss, _ = F.cross_entropy(
            Tensor.from_numpy(np.zeros((3, 10), np.float32)),
            Tensor.from_numpy(np.array([0, 5, 9], np.int64)),
        )
        assert float(loss.numpy()) == pytest.approx(np.log(10), rel=1e-6)


class TestDropout:
    def test_p_zero_is_identity(self):
        x = t64(np.arange(4.0))
        y, mask = F.dropout(x, 0.0, None)
        assert mask is None
        np.testing.assert_array_equal(y.numpy(), x.numpy())

    def test_inverted_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor.from_numpy(np.ones((100, 100), np.float32))
        y, mask = F.dropout(x, 0.5, rng)
        assert abs(float(y.numpy().mean()) - 1.0) < 0.05

    def test_grad_uses_same_mask(self):
        rng = np.random.default_rng(0)
        x = Tensor.from_numpy(np.ones((10, 10), np.float32))
        y, mask = F.dropout(x, 0.3, rng)
        dy = F.dropout_grad(Tensor.from_numpy(np.ones((10, 10), np.float32)), mask)
        np.testing.assert_array_equal(dy.numpy(), y.numpy())

    def test_validation(self):
        with pytest.raises(ValueError):
            F.dropout(t64([1.0]), 1.0, None)
        with pytest.raises(ValueError):
            F.dropout(t64([1.0]), 0.5, None)  # real mode needs rng


class TestMetaPropagation:
    """Every primitive must propagate meta-ness with correct shapes."""

    def test_meta_chain(self):
        x = Tensor.meta((2, 3, 8), np.float16)
        w = Tensor.meta((16, 8), np.float16)
        wt = F.transpose(w, (1, 0))
        y = F.matmul(x, wt)
        assert y.is_meta and y.shape == (2, 3, 16)
        g = F.gelu(y)
        assert g.is_meta and g.dtype == np.float16
        s = F.softmax(g)
        assert s.is_meta
        summed = F.sum_to(s, (16,))
        assert summed.is_meta and summed.shape == (16,)

    def test_meta_layernorm_and_xent(self):
        x = Tensor.meta((4, 8), np.float16)
        y, mean, rstd = F.layernorm(x, Tensor.meta((8,), np.float16), Tensor.meta((8,), np.float16))
        assert y.is_meta and mean.shape == (4, 1)
        loss, probs = F.cross_entropy(Tensor.meta((4, 10), np.float16), Tensor.meta((4,), np.int64))
        assert loss.is_meta and probs.shape == (4, 10)

    def test_meta_mixed_with_real_is_meta(self):
        a = Tensor.meta((2, 2), np.float32)
        b = Tensor.from_numpy(np.ones((2, 2), np.float32))
        assert F.add(a, b).is_meta
        assert F.matmul(b, a).is_meta
