"""Max-model / max-batch solvers and their paper-level implications."""

import pytest

from repro.analysis.max_model import device_bytes_for, max_batch, max_layers
from repro.nn.transformer import GPTConfig
from repro.utils.units import GB
from repro.zero.config import ZeROConfig


def test_solution_is_maximal():
    """The found layer count fits; one more layer does not."""
    zero = ZeROConfig(stage=2)
    fit = max_layers(zero, hidden=4096, heads=32, batch=8, nd=128)
    assert fit.fits
    assert fit.device_bytes <= 30 * GB
    bigger = GPTConfig(
        n_layers=fit.config.n_layers + 1, hidden=4096, n_heads=32,
    )
    assert device_bytes_for(bigger, zero, batch=8, nd=128) > 30 * GB


def test_stage_monotone():
    sizes = {}
    for stage in (0, 1, 2, 3):
        fit = max_layers(ZeROConfig(stage=stage), hidden=4096, heads=32, batch=8, nd=64)
        sizes[stage] = fit.psi
    assert sizes[0] < sizes[1] < sizes[2] < sizes[3]


def test_figure4_claim_13b_dp_only():
    """ZeRO-100B (stage 2) on 128 GPUs fits >= 13B without MP; baseline
    DP dies below 1.5B (Figure 4 / Section 10.4)."""
    z = max_layers(ZeROConfig(stage=2), hidden=4096, heads=32, batch=2, nd=128)
    assert z.psi >= 13e9
    b = max_layers(ZeROConfig(stage=0), hidden=1536, heads=16, batch=1, nd=128)
    # Analytic bound ~1.9B; the paper's measured 1.4B includes framework
    # overheads. Either way ZeRO's DP-only capacity is ~an order bigger.
    assert b.psi < 2e9
    assert z.psi / b.psi > 6


def test_max_batch_maximal_and_monotone_in_stage():
    cfg = GPTConfig(n_layers=75, hidden=8192, n_heads=64)
    b2 = max_batch(cfg, ZeROConfig(stage=2, partition_activations=True), nd=8, mp=16)
    b1 = max_batch(cfg, ZeROConfig(stage=1, partition_activations=True), nd=8, mp=16)
    assert b2 >= b1 >= 1
    too_big = device_bytes_for(
        cfg, ZeROConfig(stage=2, partition_activations=True), batch=b2 + 1, nd=8, mp=16
    )
    assert too_big > 30 * GB


def test_max_batch_zero_when_states_alone_overflow():
    cfg = GPTConfig(n_layers=212, hidden=8192, n_heads=64)  # 170B
    assert max_batch(cfg, ZeROConfig(stage=1), nd=8, mp=16) == 0


def test_pa_increases_max_batch():
    cfg = GPTConfig(n_layers=75, hidden=8192, n_heads=64)
    no_pa = max_batch(cfg, ZeROConfig(stage=2), nd=8, mp=16)
    pa = max_batch(cfg, ZeROConfig(stage=2, partition_activations=True), nd=8, mp=16)
    assert pa > no_pa


def test_nd_increases_capacity():
    """More DP replicas -> bigger trainable model (the ZeRO scaling law)."""
    small = max_layers(ZeROConfig(stage=2), hidden=4096, heads=32, batch=4, nd=4)
    large = max_layers(ZeROConfig(stage=2), hidden=4096, heads=32, batch=4, nd=256)
    assert large.psi > 2 * small.psi
