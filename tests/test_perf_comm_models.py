"""Performance and communication models vs the paper's qualitative anchors."""

import pytest

from repro.analysis.comm_model import MPCommModel, dp_volume_elements
from repro.analysis.perf_model import (
    PerfModel,
    gemm_efficiency,
    transformer_flops_per_replica,
)
from repro.configs import TABLE5_FIGURE2, TABLE6_FIGURE3
from repro.nn.transformer import GPTConfig


class TestCommModel:
    def test_dp_volumes(self):
        assert dp_volume_elements(10, 0) == 20
        assert dp_volume_elements(10, 1) == 20
        assert dp_volume_elements(10, 2) == 20
        assert dp_volume_elements(10, 3) == 30  # the 1.5x of Section 7.2.2
        with pytest.raises(ValueError):
            dp_volume_elements(10, 4)

    def test_megatron_block_volume_formula(self):
        """Section 8: 12 x seq x hidden per block (with batch factored in)."""
        m = MPCommModel(batch=1, seq_len=1024, hidden=4096)
        assert m.baseline_elements_per_block() == 12 * 1024 * 4096

    def test_pa_overhead_under_ten_percent(self):
        m = MPCommModel(batch=4, seq_len=1024, hidden=8192)
        assert m.pa_overhead_fraction() == pytest.approx(1 / 12)
        assert m.pa_overhead_fraction() < 0.10

    def test_pa_cpu_is_twice_the_shard(self):
        m = MPCommModel(batch=2, seq_len=128, hidden=256)
        assert m.pa_cpu_transfer_elements_per_block(16) == pytest.approx(
            2 * 2 * 128 * 256 / 16
        )


class TestGemmEfficiency:
    def test_monotone_in_hidden(self):
        assert gemm_efficiency(8192) > gemm_efficiency(4096) > gemm_efficiency(1600)

    def test_paper_regime(self):
        # 30%+ of peak at h=8192 (Section 10.2's "over 30% of the peak").
        assert 0.30 < gemm_efficiency(8192) < 0.55


class TestFlops:
    def test_checkpointing_adds_a_forward(self):
        cfg = GPTConfig(n_layers=10, hidden=1024, n_heads=16)
        with_ckpt = transformer_flops_per_replica(cfg, batch=4, checkpointing=True)
        without = transformer_flops_per_replica(cfg, batch=4, checkpointing=False)
        assert with_ckpt / without == pytest.approx(96 / 72)

    def test_linear_in_batch(self):
        cfg = GPTConfig(n_layers=10, hidden=1024, n_heads=16)
        f1 = transformer_flops_per_replica(cfg, batch=1)
        f8 = transformer_flops_per_replica(cfg, batch=8)
        assert f8 == pytest.approx(8 * f1)


class TestPerfModelAnchors:
    """The paper's headline performance claims, as shape constraints."""

    def setup_method(self):
        self.pm = PerfModel()
        self.points = {}
        for p in TABLE5_FIGURE2:
            est = self.pm.estimate(
                p.model, batch=p.batch, mp_degree=p.mp, n_gpus=p.n_gpus,
                zero_stage=2 if p.system == "zero" else 0,
                partition_activations=(p.system == "zero" and p.mp > 1),
            )
            self.points[(p.label, p.system)] = (p, est)

    def test_zero_sustains_30_to_50_tflops_8b_to_100b(self):
        for label in ("8B", "40B", "60B", "80B", "100B"):
            _, est = self.points[(label, "zero")]
            assert 28 < est.tflops_per_gpu < 50, label

    def test_aggregate_15_petaflops_at_100b(self):
        p, est = self.points[("100B", "zero")]
        assert est.tflops_per_gpu * p.n_gpus / 1000 == pytest.approx(15, rel=0.15)

    def test_baseline_collapses_across_nodes(self):
        """Section 10.2: Megatron 40B over 2 nodes ~5 TFlops (<5% peak)."""
        _, est = self.points[("40B", "baseline")]
        assert est.tflops_per_gpu < 0.08 * 125

    def test_speedup_near_10x_at_scale(self):
        for label in ("60B", "80B", "100B", "120B", "140B", "170B"):
            _, ze = self.points[(label, "zero")]
            _, be = self.points[(label, "baseline")]
            assert ze.tflops_per_gpu / be.tflops_per_gpu > 7, label

    def test_small_models_closer(self):
        _, ze = self.points[("1.5B", "zero")]
        _, be = self.points[("1.5B", "baseline")]
        assert ze.tflops_per_gpu / be.tflops_per_gpu < 2

    def test_superlinear_scaling_figure3(self):
        per_gpu = []
        for p in TABLE6_FIGURE3:
            est = self.pm.estimate(
                p.model, batch=p.batch, mp_degree=p.mp, n_gpus=p.n_gpus,
                zero_stage=2, partition_activations=True,
            )
            per_gpu.append((p.n_gpus, est.tflops_per_gpu))
        # Per-GPU throughput grows with GPU count (=> aggregate superlinear).
        assert per_gpu[-1][1] > per_gpu[0][1]
        agg = {n: n * t for n, t in per_gpu}
        assert agg[128] > 2 * agg[64]  # "more than doubles"

    def test_mp_within_node_cheap_across_node_expensive(self):
        cfg = GPTConfig(n_layers=40, hidden=8192, n_heads=64)
        inside = self.pm.estimate(cfg, batch=8, mp_degree=16, n_gpus=64, zero_stage=2)
        across = self.pm.estimate(cfg, batch=8, mp_degree=32, n_gpus=64, zero_stage=2)
        assert across.mp_comm_s > 5 * inside.mp_comm_s

    def test_stage3_dp_traffic_is_1_5x_stage2(self):
        cfg = GPTConfig(n_layers=24, hidden=4096, n_heads=32)
        s2 = self.pm.estimate(cfg, batch=8, mp_degree=1, n_gpus=64, zero_stage=2)
        s3 = self.pm.estimate(cfg, batch=8, mp_degree=1, n_gpus=64, zero_stage=3)
        assert s3.dp_comm_s / s2.dp_comm_s == pytest.approx(1.5)

    def test_pa_cpu_costs_time(self):
        cfg = GPTConfig(n_layers=75, hidden=8192, n_heads=64)
        plain = self.pm.estimate(cfg, batch=16, mp_degree=16, n_gpus=128,
                                 zero_stage=2, partition_activations=True)
        offload = self.pm.estimate(cfg, batch=16, mp_degree=16, n_gpus=128,
                                   zero_stage=2, partition_activations=True,
                                   cpu_offload_activations=True)
        assert offload.pa_cpu_s > 0
        assert offload.tflops_per_gpu < plain.tflops_per_gpu

    def test_gpus_must_divide_by_mp(self):
        with pytest.raises(ValueError):
            self.pm.estimate(GPTConfig(2, 64, 4), batch=1, mp_degree=3, n_gpus=64)
