"""Global gradient-norm clipping: a *distributed* computation under ZeRO
(each rank holds a gradient partition; the norm is assembled by summing
partition norms across the group). Must be identical across stages."""

import numpy as np
import pytest

from repro import Cluster, GPTConfig, ZeROConfig
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.optim.adam import AdamHyperparams
from repro.parallel.engine import EngineConfig
from repro.zero.factory import build_model_and_engine

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)
WORLD = 4


def run(stage, clip, steps=3):
    cluster = Cluster(WORLD, gpu=GPU, timeout_s=60.0)

    def fn(ctx):
        zero = ZeROConfig(stage=stage, checkpoint_activations=False, memory_defrag=False)
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
            engine_config=EngineConfig(
                adam=AdamHyperparams(lr=1e-3), bucket_numel=2000, grad_clip_norm=clip,
            ),
        )
        losses = []
        for step in range(steps):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            losses.append(engine.train_step(ids, tgt).loss)
        return losses, engine.opt_state.master.data.copy()

    return cluster.run(fn)


def test_clipping_changes_training():
    unclipped = run(0, clip=None)
    clipped = run(0, clip=0.05)  # typical LM gradient norms exceed this early
    assert not np.array_equal(unclipped[0][1], clipped[0][1])


def test_huge_clip_is_identity():
    unclipped = run(2, clip=None)
    effectively_off = run(2, clip=1e9)
    for rank in range(WORLD):
        np.testing.assert_array_equal(unclipped[rank][1], effectively_off[rank][1])


@pytest.mark.parametrize("stage", [1, 2, 3])
def test_clipped_training_identical_across_stages(stage):
    """The distributed norm (partition norms summed across ranks) must
    equal DDP's local full norm, so trajectories stay equal."""
    ddp = run(0, clip=0.05)
    z = run(stage, clip=0.05)
    full = ddp[0][1]
    part = len(full) // WORLD
    for rank in range(WORLD):
        np.testing.assert_allclose(
            z[rank][1], full[rank * part : (rank + 1) * part], rtol=1e-6, atol=1e-8,
        )
        assert z[rank][0] == ddp[rank][0]  # losses exactly (fwd unaffected)


def test_clip_actually_bounds_update_norm():
    """First-step Adam update magnitude shrinks with the clip threshold."""

    def first_delta(clip):
        out = run(2, clip=clip, steps=1)
        return out  # compare master drift

    base = run(2, clip=None, steps=1)
    tight = run(2, clip=0.01, steps=1)
    # Initial master (pre-step) equals params; compare drift magnitudes.
    init = run(2, clip=None, steps=0)
    drift_base = np.abs(base[0][1] - init[0][1]).mean()
    drift_tight = np.abs(tight[0][1] - init[0][1]).mean()
    assert drift_tight < drift_base
    del first_delta


def test_invalid_clip_rejected():
    with pytest.raises(ValueError, match="positive"):
        run(0, clip=-1.0, steps=1)
