"""Hypothesis property tests on the partitioning math underlying ZeRO."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster, GPTConfig, ZeROConfig
from repro.hardware.specs import GPUSpec
from repro.nn.layers import make_param
from repro.optim.flat import FlatLayout
from repro.runtime import virtual_rank_context
from repro.tensor.tensor import Tensor
from repro.zero.factory import build_model_and_engine

GPU = GPUSpec("t", 10**9, 1e12)


def owner_segments(numel, nd, lo, hi):
    """Reference reimplementation of the engines' _owner_segments."""
    out = []
    size = numel // nd
    while lo < hi:
        owner = lo // size
        seg_hi = min(hi, (owner + 1) * size)
        out.append((owner, lo, seg_hi))
        lo = seg_hi
    return out


class TestOwnerSegments:
    @settings(max_examples=80, deadline=None)
    @given(
        nd=st.integers(1, 16),
        chunks=st.integers(1, 50),
        data=st.data(),
    )
    def test_segments_partition_ranges_exactly(self, nd, chunks, data):
        numel = nd * data.draw(st.integers(1, 64))
        lo = data.draw(st.integers(0, numel - 1))
        hi = data.draw(st.integers(lo + 1, numel))
        segs = owner_segments(numel, nd, lo, hi)
        # Coverage: segments tile [lo, hi) exactly, in order.
        cursor = lo
        for owner, a, b in segs:
            assert a == cursor and b > a
            cursor = b
            # Each segment lies wholly inside its owner's partition.
            size = numel // nd
            assert owner == a // size
            assert b <= (owner + 1) * size
        assert cursor == hi
        # Owners are non-decreasing and within range.
        owners = [o for o, _, _ in segs]
        assert owners == sorted(owners)
        assert all(0 <= o < nd for o in owners)
        del chunks

    @settings(max_examples=40, deadline=None)
    @given(nd=st.integers(1, 12), per=st.integers(1, 32))
    def test_full_space_splits_into_nd_equal_partitions(self, nd, per):
        numel = nd * per
        segs = owner_segments(numel, nd, 0, numel)
        assert len(segs) == nd
        assert all(b - a == per for _, a, b in segs)


class TestEngineAgainstSegments:
    @settings(max_examples=10, deadline=None)
    @given(world=st.sampled_from([2, 3, 4]))
    def test_stage2_partition_bounds_consistent(self, world):
        cluster = Cluster(world, gpu=GPU, timeout_s=60.0)
        cfg = GPTConfig(n_layers=1, hidden=16, n_heads=2, vocab_size=31, max_seq_len=8)

        def fn(ctx):
            zero = ZeROConfig(stage=2, checkpoint_activations=False, memory_defrag=False)
            model, engine = build_model_and_engine(
                ctx, cfg, zero, dp_group=ctx.world, dtype=np.float32, seed=0,
            )
            return engine.part_lo, engine.part_hi, engine.layout.numel

        results = cluster.run(fn)
        numel = results[0][2]
        covered = sorted((lo, hi) for lo, hi, _ in results)
        assert covered[0][0] == 0 and covered[-1][1] == numel
        for (al, ah), (bl, bh) in zip(covered, covered[1:]):
            assert ah == bl  # contiguous, disjoint
        del ah


class TestPaRoundtripProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        shape=st.tuples(st.integers(1, 4), st.integers(1, 6), st.integers(1, 9)),
        world=st.sampled_from([2, 3]),
        seed=st.integers(0, 99),
    )
    def test_partition_gather_is_identity_for_any_shape(self, shape, world, seed):
        """Pa must round-trip activations exactly, including non-divisible
        sizes that need padding."""
        payload = np.random.default_rng(seed).standard_normal(shape).astype(np.float32)
        cluster = Cluster(world, gpu=GPU, timeout_s=60.0)

        def fn(ctx):
            from repro.zero.activation import PartitionedStore

            store = PartitionedStore(ctx.world, ctx)
            handle = store.stash(Tensor.from_numpy(payload.copy(), device=ctx.device))
            back = store.retrieve(handle)
            out = back.numpy().copy()
            back.free()
            store.discard(handle)
            return out

        for out in cluster.run(fn):
            np.testing.assert_array_equal(out, payload)


class TestFlatLayoutGatherScatterProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 30), min_size=1, max_size=6),
        seed=st.integers(0, 999),
        lo_frac=st.floats(0, 0.9),
        hi_frac=st.floats(0.1, 1.0),
    )
    def test_range_gather_matches_full_gather(self, sizes, seed, lo_frac, hi_frac):
        params = [make_param(f"p{i}", (s,), init="zeros", dtype=np.float32)
                  for i, s in enumerate(sizes)]
        rng = np.random.default_rng(seed)
        for p in params:
            p.data.data = rng.standard_normal(p.shape).astype(np.float32)
        layout = FlatLayout(params)
        full = layout.gather_params(np.float32)
        lo = int(lo_frac * layout.numel)
        hi = max(lo + 1, int(hi_frac * layout.numel))
        hi = min(hi, layout.numel)
        piece = layout.gather_param_range(lo, hi, np.float32)
        np.testing.assert_array_equal(piece, full[lo:hi])


def test_virtual_rank_context_shape():
    ctx = virtual_rank_context(400, rank=0)
    assert ctx.world_size == 400
    assert ctx.world.size == 400
    assert ctx.device.spec.memory_gb == 32.0
    assert ctx.topology.n_nodes == 25
    ctx.world.meta_collective(0, "all_gather", 100, "x")
    assert ctx.ledger.nominal_bytes() == 100
