"""GPipe pipeline parallelism: numerics vs serial, memory split, schedule."""

import numpy as np
import pytest

from repro import Cluster, GPTConfig
from repro.analysis.pp_model import (
    gpipe_device_bytes,
    microbatches_for_bubble,
    pipeline_bubble_fraction,
)
from repro.analysis.memory_model import ActivationModel
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.nn.loss import CausalLMLoss
from repro.nn.module import ExecutionContext
from repro.nn.transformer import GPT2Model
from repro.optim.adam import AdamHyperparams
from repro.optim.flat import FlatLayout
from repro.optim.mixed_precision import FlatAdamState
from repro.parallel.pipeline import GPipeEngine, split_units
from repro.tensor.tensor import Tensor

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=4, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)


class TestSplitUnits:
    def test_balanced_contiguous(self):
        assert split_units(6, 2) == [(0, 3), (3, 6)]
        assert split_units(7, 2) == [(0, 4), (4, 7)]
        assert split_units(6, 3) == [(0, 2), (2, 4), (4, 6)]

    def test_validation(self):
        with pytest.raises(ValueError):
            split_units(2, 3)
        with pytest.raises(ValueError):
            split_units(2, 0)


def serial_reference(steps=2, lr=1e-3):
    rng = np.random.default_rng(0)
    model = GPT2Model(CFG, dtype=np.float64, rng=rng)
    layout = FlatLayout(model.parameters())
    opt = FlatAdamState(layout.numel, hp=AdamHyperparams(lr=lr))
    opt.init_master(layout.gather_params(np.float32))
    loss_head = CausalLMLoss()
    losses = []
    for step in range(steps):
        ids, tgt = CORPUS.sample_batch(4, 16, rank=0, step=step)
        logits, cache = model.forward(Tensor.from_numpy(ids), ExecutionContext())
        loss, lcache = loss_head.forward(logits, Tensor.from_numpy(tgt))
        model.backward(cache, loss_head.backward(lcache))
        losses.append(float(loss.numpy()))
        master = opt.step(layout.gather_grads(np.float32, missing_ok=True))
        layout.scatter_params(master.astype(np.float64))
        model.zero_grad()
    return model, losses


class TestGPipeNumerics:
    @pytest.mark.parametrize("stages,micro", [(2, 1), (2, 2), (3, 4)])
    def test_matches_serial_training(self, stages, micro):
        serial_model, serial_losses = serial_reference()
        serial_params = {p.name: p.data.numpy().copy() for p in serial_model.parameters()}

        def fn(ctx):
            engine = GPipeEngine(
                ctx, CFG, ctx.world, n_microbatches=micro, dtype=np.float64,
                seed=0, adam=AdamHyperparams(lr=1e-3),
            )
            losses = []
            for step in range(2):
                ids, tgt = CORPUS.sample_batch(4, 16, rank=0, step=step)
                losses.append(engine.train_step(ids, tgt))
            params = {p.name: p.data.numpy().copy() for p in engine.stage_module.parameters()}
            return losses, params

        results = Cluster(stages, gpu=GPU, timeout_s=60.0).run(fn)
        last_losses = results[-1][0]
        for got, want in zip(last_losses, serial_losses):
            assert got == pytest.approx(want, rel=1e-9)
        for _, params in results:
            for name, value in params.items():
                # fp32 master-state rounding bounds the achievable agreement.
                np.testing.assert_allclose(value, serial_params[name], rtol=1e-5, atol=1e-7)

    def test_non_last_stages_report_none(self):
        def fn(ctx):
            engine = GPipeEngine(ctx, CFG, ctx.world, n_microbatches=2,
                                 dtype=np.float32, seed=0)
            ids, tgt = CORPUS.sample_batch(4, 16, rank=0, step=0)
            return engine.train_step(ids, tgt)

        out = Cluster(2, gpu=GPU, timeout_s=60.0).run(fn)
        assert out[0] is None and out[1] is not None

    def test_batch_divisibility_enforced(self):
        def fn(ctx):
            engine = GPipeEngine(ctx, CFG, ctx.world, n_microbatches=3,
                                 dtype=np.float32, seed=0)
            ids, tgt = CORPUS.sample_batch(4, 16, rank=0, step=0)
            with pytest.raises(ValueError, match="micro-batches"):
                engine.train_step(ids, tgt)
            return True

        assert all(Cluster(2, gpu=GPU, timeout_s=60.0).run(fn))


class TestGPipeMemory:
    def test_params_split_across_stages(self):
        def fn(ctx):
            engine = GPipeEngine(ctx, CFG, ctx.world, n_microbatches=1,
                                 dtype=np.float32, seed=0)
            return engine.local_param_count

        counts = Cluster(2, gpu=GPU, timeout_s=60.0).run(fn)
        assert sum(counts) == CFG.total_params
        assert max(counts) < CFG.total_params  # genuinely split

    def test_device_memory_scales_with_microbatches(self):
        """GPipe's weakness: in-flight micro-batches pile up activations."""

        def peak(micro):
            def fn(ctx):
                engine = GPipeEngine(ctx, CFG, ctx.world, n_microbatches=micro,
                                     dtype=np.float32, seed=0)
                ctx.device.reset_peak_stats()
                ids, tgt = CORPUS.sample_batch(8, 16, rank=0, step=0)
                engine.train_step(ids, tgt)
                return ctx.device.max_allocated_bytes

            return max(Cluster(2, gpu=GPU, timeout_s=60.0).run(fn))

        # Same total batch; more in-flight micro-batches should not *reduce*
        # held activation state (boundaries accumulate across the stage).
        assert peak(8) >= peak(1) * 0.5


class TestGPipeComm:
    def test_boundary_activation_traffic_recorded(self):
        """Each micro-batch crosses every stage boundary twice (activation
        forward + gradient backward): 2 x M x (mb x seq x hidden) bytes."""
        micro = 2

        def fn(ctx):
            engine = GPipeEngine(ctx, CFG, ctx.world, n_microbatches=micro,
                                 dtype=np.float32, seed=0)
            ctx.ledger.clear()
            ids, tgt = CORPUS.sample_batch(4, 16, rank=0, step=0)
            engine.train_step(ids, tgt)
            return ctx.ledger.by_phase()

        phases = Cluster(2, gpu=GPU, timeout_s=60.0).run(fn)[0]
        per_boundary = (4 // micro) * 16 * CFG.hidden * 4  # fp32 bytes
        assert phases["pp-act"] == micro * per_boundary
        assert phases["pp-grad"] == micro * per_boundary


class TestPPAnalysis:
    def test_bubble_fraction(self):
        assert pipeline_bubble_fraction(4, 4) == pytest.approx(3 / 7)
        assert pipeline_bubble_fraction(1, 8) == 0.0
        assert pipeline_bubble_fraction(8, 1) == pytest.approx(7 / 8)

    def test_microbatches_grow_with_stages(self):
        """Hiding the bubble needs M ~ proportional to S (paper Section 2.1)."""
        m4 = microbatches_for_bubble(4, 0.2)
        m8 = microbatches_for_bubble(8, 0.2)
        m16 = microbatches_for_bubble(16, 0.2)
        assert m4 < m8 < m16
        assert m16 / m4 == pytest.approx(16 / 4, rel=0.4)

    def test_zero_beats_gpipe_memory_at_equal_devices(self):
        """Section 2.1: 'ZeRO obtains the same or better memory efficiency
        than PP', because PP must hold M micro-batches of activations to
        hide its bubble while ZeRO holds one batch and 1/Nd states."""
        from repro.analysis.pp_model import zero_device_bytes_for_comparison

        psi = 10e9
        devices = 16
        micro = microbatches_for_bubble(devices, 0.2)
        act_micro = ActivationModel(hidden=4096, n_layers=50, seq_len=1024, batch=2)
        gpipe = gpipe_device_bytes(
            psi, act_micro, n_stages=devices, n_microbatches=micro,
        )
        # ZeRO runs the same global batch data-parallel: each of the same
        # `devices` ranks sees (2 x M) / Nd samples, and full ZeRO (stage 3)
        # matches PP's 16 Psi / S model-state split without the M in-flight
        # micro-batches.
        per_rank_batch = max(1, (2 * micro) // devices)
        act_full = ActivationModel(
            hidden=4096, n_layers=50, seq_len=1024, batch=per_rank_batch
        )
        zero = zero_device_bytes_for_comparison(psi, act_full, nd=devices, stage=3)
        assert zero <= gpipe

    def test_validation(self):
        with pytest.raises(ValueError):
            pipeline_bubble_fraction(0, 4)
        with pytest.raises(ValueError):
            microbatches_for_bubble(4, 1.5)
