"""Closed-form memory model vs the paper's published numbers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.memory_model import (
    ActivationModel,
    max_model_params,
    model_state_bytes,
    temporary_buffer_bytes,
    total_device_bytes,
)
from repro.utils.units import BILLION, GB


class TestModelStateFormulas:
    def test_figure1_worked_example(self):
        """Psi=7.5B, Nd=64: 120 / 31.4 / 16.6 / 1.9 GB."""
        psi, nd = 7.5e9, 64
        assert model_state_bytes(psi, nd, 0) / GB == pytest.approx(120.0)
        assert model_state_bytes(psi, nd, 1) / GB == pytest.approx(31.4, abs=0.05)
        assert model_state_bytes(psi, nd, 2) / GB == pytest.approx(16.6, abs=0.05)
        assert model_state_bytes(psi, nd, 3) / GB == pytest.approx(1.88, abs=0.01)

    def test_gpt2_needs_24gb(self):
        # Section 3.1: 1.5B GPT-2 needs "at least 24GB" vs 3GB of fp16 weights.
        assert model_state_bytes(1.5e9, 1, 0) / GB == pytest.approx(24.0)

    @pytest.mark.parametrize(
        "model_gb, nd, stage, expected",
        [
            (7.5e9, 4, 1, 52.5), (7.5e9, 4, 2, 41.3), (7.5e9, 4, 3, 30.0),
            (7.5e9, 16, 3, 7.5), (7.5e9, 1024, 1, 30.1),
            (128e9, 16, 1, 608.0), (128e9, 64, 2, 284.0), (128e9, 1024, 3, 2.0),
            (1e12, 1, 1, 16000.0), (1e12, 1024, 3, 15.6),
        ],
    )
    def test_table1_cells(self, model_gb, nd, stage, expected):
        assert model_state_bytes(model_gb, nd, stage) / GB == pytest.approx(expected, rel=0.01)

    def test_asymptotic_reductions(self):
        """4x / 8x / Nd reductions claimed in the introduction."""
        psi, nd = 1e9, 1_000_000
        base = model_state_bytes(psi, nd, 0)
        assert base / model_state_bytes(psi, nd, 1) == pytest.approx(4.0, rel=0.01)
        assert base / model_state_bytes(psi, nd, 2) == pytest.approx(8.0, rel=0.01)
        assert base / model_state_bytes(psi, 64, 3) == pytest.approx(64.0)

    def test_trillion_on_1024_gpus_fits(self):
        """Section 5.4: Pos+g+p fits 1T parameters on 1024 x 32GB GPUs."""
        per_device = model_state_bytes(1e12, 1024, 3)
        assert per_device <= 32 * GB

    @settings(max_examples=40, deadline=None)
    @given(
        psi=st.floats(1e6, 1e13),
        nd=st.integers(1, 4096),
    )
    def test_property_stage_ordering(self, psi, nd):
        """More aggressive stages never use more memory; all are positive."""
        vals = [model_state_bytes(psi, nd, s) for s in (0, 1, 2, 3)]
        assert vals[0] >= vals[1] >= vals[2] >= vals[3] > 0

    @settings(max_examples=40, deadline=None)
    @given(psi=st.floats(1e6, 1e12), nd=st.integers(1, 2048), stage=st.integers(1, 3))
    def test_property_monotone_in_nd(self, psi, nd, stage):
        assert model_state_bytes(psi, nd, stage) >= model_state_bytes(psi, nd * 2, stage)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            model_state_bytes(1e9, 0, 1)
        with pytest.raises(ValueError):
            model_state_bytes(1e9, 1, 5)


class TestMaxModelParams:
    def test_table2_theoretical_row1(self):
        """MP=1, 64 GPUs: 2B / 7.6B / 14.4B / 128B."""
        mem = 32 * GB
        assert max_model_params(mem, 64, 0) / BILLION == pytest.approx(2.0)
        assert max_model_params(mem, 64, 1) / BILLION == pytest.approx(7.64, abs=0.05)
        assert max_model_params(mem, 64, 2) / BILLION == pytest.approx(14.42, abs=0.05)
        assert max_model_params(mem, 64, 3) / BILLION == pytest.approx(128.0)

    def test_mp_multiplies_linearly(self):
        mem = 32 * GB
        base = max_model_params(mem, 64, 1)
        for mp in (2, 4, 8, 16):
            assert mp * base == pytest.approx(mp * max_model_params(mem, 64, 1))


class TestActivationModel:
    def test_paper_gpt2_60gb(self):
        """Section 3.2: 1.5B GPT-2, seq 1K, batch 32 -> ~60 GB activations."""
        act = ActivationModel(hidden=1600, n_layers=48, seq_len=1024, batch=32)
        assert act.total_bytes() / GB == pytest.approx(60.0, rel=0.05)

    def test_paper_100b_checkpoint_example(self):
        """Section 6.1: 100B model (125 x 8192), batch 32, seq 1024 — the
        paper reports ~33 GB of checkpoints per GPU without Pa and ~2 GB
        with Pa at MP=16. One checkpoint per layer gives exactly 2x those
        numbers (67 / 4.2 GB), i.e. the paper's figures correspond to
        checkpointing every other layer; the Pa ratio (= MP degree 16x)
        holds either way and is the claim under test."""
        act = ActivationModel(hidden=8192, n_layers=125, seq_len=1024, batch=32, mp_degree=16)
        no_pa = act.checkpoint_bytes(partition_activations=False)
        with_pa = act.checkpoint_bytes(partition_activations=True)
        assert no_pa / GB == pytest.approx(67.1, rel=0.02)
        assert no_pa / 2 / GB == pytest.approx(33.0, rel=0.05)  # paper's number
        assert no_pa / with_pa == pytest.approx(16.0)  # Pa saves the MP factor
        assert act.checkpoint_bytes(partition_activations=True, cpu_offload=True) == 0.0

    def test_checkpointing_beats_full_activations(self):
        act = ActivationModel(hidden=4096, n_layers=50, seq_len=1024, batch=8)
        assert act.iteration_bytes(checkpointing=True) < act.total_bytes() / 4

    def test_pa_divides_by_mp(self):
        a1 = ActivationModel(hidden=1024, n_layers=10, seq_len=128, batch=4, mp_degree=1)
        a16 = ActivationModel(hidden=1024, n_layers=10, seq_len=128, batch=4, mp_degree=16)
        assert a1.checkpoint_bytes(partition_activations=True) == pytest.approx(
            16 * a16.checkpoint_bytes(partition_activations=True)
        )


class TestBuffersAndTotal:
    def test_paper_6gb_fused_buffer(self):
        """Section 3.2: 1.5B params -> 6 GB fp32 fused buffer without CB."""
        assert temporary_buffer_bytes(1.5e9, constant_buffers=False) / GB == pytest.approx(6.0)

    def test_cb_is_constant(self):
        small = temporary_buffer_bytes(1e9, constant_buffers=True)
        large = temporary_buffer_bytes(1e12, constant_buffers=True)
        assert small == large

    def test_total_compounds_mp_and_dp(self):
        """Section 1: max theoretical reduction Nd x Nm on model states."""
        act = ActivationModel(hidden=1024, n_layers=4, seq_len=64, batch=1, mp_degree=4)
        dense = total_device_bytes(1e9, act, nd=1, stage=0, mp_degree=1)
        sharded = total_device_bytes(1e9, act, nd=8, stage=3, mp_degree=4,
                                     partition_activations=True)
        assert dense / sharded > 8  # dominated by the 32x model-state cut
