"""LR schedules: shapes, bounds, and engine integration across stages."""

import numpy as np
import pytest

from repro import Cluster, GPTConfig, ZeROConfig
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.optim.adam import AdamHyperparams
from repro.optim.lr_schedule import ConstantLR, WarmupCosineDecay, WarmupLinearDecay
from repro.parallel.engine import EngineConfig
from repro.zero.factory import build_model_and_engine

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)


class TestSchedules:
    def test_constant(self):
        s = ConstantLR(0.01)
        assert s.lr(1) == s.lr(1000) == 0.01

    def test_linear_warmup_then_decay(self):
        s = WarmupLinearDecay(peak_lr=1.0, warmup_steps=4, total_steps=12, min_lr=0.2)
        assert s.lr(1) == pytest.approx(0.25)
        assert s.lr(4) == pytest.approx(1.0)
        assert s.lr(8) == pytest.approx(0.6)
        assert s.lr(12) == 0.2
        assert s.lr(100) == 0.2  # clamped after total_steps

    def test_cosine_shape(self):
        s = WarmupCosineDecay(peak_lr=1.0, warmup_steps=2, total_steps=10, min_lr=0.0)
        assert s.lr(2) == pytest.approx(1.0)
        mid = s.lr(6)
        assert 0.4 < mid < 0.6  # half-way cosine
        assert s.lr(10) == 0.0
        # Monotone decrease after warmup.
        values = [s.lr(t) for t in range(2, 11)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupLinearDecay(peak_lr=1.0, warmup_steps=10, total_steps=5)
        with pytest.raises(ValueError):
            WarmupCosineDecay(peak_lr=0.1, warmup_steps=1, total_steps=5, min_lr=0.5)
        with pytest.raises(ValueError):
            WarmupLinearDecay(peak_lr=1.0, warmup_steps=2, total_steps=5).lr(0)


class TestEngineIntegration:
    def run(self, stage, schedule, steps=4):
        cluster = Cluster(2, gpu=GPU, timeout_s=60.0)

        def fn(ctx):
            zero = ZeROConfig(stage=stage, checkpoint_activations=False, memory_defrag=False)
            model, engine = build_model_and_engine(
                ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
                engine_config=EngineConfig(
                    adam=AdamHyperparams(lr=999.0),  # overridden by the schedule
                    lr_schedule=schedule,
                ),
            )
            deltas = []
            prev = engine.opt_state.master.data.copy()
            for step in range(steps):
                ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
                engine.train_step(ids, tgt)
                cur = engine.opt_state.master.data
                deltas.append(float(np.abs(cur - prev).mean()))
                prev = cur.copy()
            return deltas, engine.opt_state.master.data.copy()

        return cluster.run(fn)

    def test_warmup_grows_update_magnitude(self):
        schedule = WarmupLinearDecay(peak_lr=1e-3, warmup_steps=4, total_steps=8)
        deltas = self.run(2, schedule)[0][0]
        # Update magnitude grows through warmup (Adam's momentum history
        # keeps the growth sub-linear in lr, so check monotonicity + a
        # substantial overall rise rather than an exact 4x).
        assert deltas[0] < deltas[1] < deltas[3]
        assert deltas[3] / deltas[0] > 1.5

    def test_schedule_preserves_cross_stage_equivalence(self):
        schedule = WarmupCosineDecay(peak_lr=1e-3, warmup_steps=2, total_steps=10)
        ddp = self.run(0, schedule)
        for stage in (1, 2, 3):
            z = self.run(stage, schedule)
            full = ddp[0][1]
            part = len(full) // 2
            for rank in range(2):
                np.testing.assert_array_equal(
                    z[rank][1], full[rank * part : (rank + 1) * part]
                )

    def test_schedule_none_uses_config_lr(self):
        a = self.run(2, None, steps=1)
        b = self.run(2, ConstantLR(999.0), steps=1)
        np.testing.assert_array_equal(a[0][1], b[0][1])
