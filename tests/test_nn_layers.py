"""Layers: Linear/Embedding/LayerNorm gradchecks, Parameter semantics, Cache."""

import numpy as np
import pytest

from repro.hardware.specs import GPUSpec
from repro.memsim.device import Device
from repro.nn.layers import Embedding, LayerNorm, Linear, make_param
from repro.nn.module import Cache, ExecutionContext, Module, Parameter
from repro.tensor.tensor import Tensor

SPEC = GPUSpec("t", 64 * 1024 * 1024, 1e12)
CTX = ExecutionContext()


def numerical_grad(f, x, eps=1e-6):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        xp, xm = x.copy(), x.copy()
        xp[i] += eps
        xm[i] -= eps
        g[i] = (f(xp) - f(xm)) / (2 * eps)
        it.iternext()
    return g


class TestLinear:
    def make(self, din=5, dout=3):
        rng = np.random.default_rng(0)
        return Linear("lin", din, dout, dtype=np.float64, rng=rng)

    def test_forward_matches_numpy(self):
        lin = self.make()
        x = np.random.default_rng(1).standard_normal((4, 5))
        y, cache = lin.forward(Tensor.from_numpy(x), CTX)
        expected = x @ lin.weight.data.numpy().T + lin.bias.data.numpy()
        np.testing.assert_allclose(y.numpy(), expected, rtol=1e-12)

    def test_forward_3d_input(self):
        lin = self.make()
        x = np.random.default_rng(1).standard_normal((2, 3, 5))
        y, _ = lin.forward(Tensor.from_numpy(x), CTX)
        assert y.shape == (2, 3, 3)

    def test_gradients(self):
        lin = self.make()
        x = np.random.default_rng(2).standard_normal((4, 5))
        r = np.random.default_rng(3).standard_normal((4, 3))

        def loss(xv=x, w=None, b=None):
            if w is not None:
                lin.weight.data.data = w
            if b is not None:
                lin.bias.data.data = b
            y, c = lin.forward(Tensor.from_numpy(xv), CTX)
            return float((y.numpy() * r).sum())

        y, cache = lin.forward(Tensor.from_numpy(x), CTX)
        dx = lin.backward(cache, Tensor.from_numpy(r))
        np.testing.assert_allclose(dx.numpy(), numerical_grad(lambda v: loss(xv=v), x), atol=1e-7)
        w0 = lin.weight.data.numpy().copy()
        np.testing.assert_allclose(
            lin.weight.grad.numpy(),
            numerical_grad(lambda wv: loss(w=wv), w0),
            atol=1e-7,
        )
        lin.weight.data.data = w0
        b0 = lin.bias.data.numpy().copy()
        np.testing.assert_allclose(
            lin.bias.grad.numpy(), numerical_grad(lambda bv: loss(b=bv), b0), atol=1e-7
        )

    def test_no_bias(self):
        rng = np.random.default_rng(0)
        lin = Linear("lin", 4, 2, bias=False, dtype=np.float32, rng=rng)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_input_dim_validated(self):
        lin = self.make()
        with pytest.raises(ValueError, match="in_features"):
            lin.forward(Tensor.from_numpy(np.zeros((2, 7))), CTX)


class TestEmbedding:
    def test_lookup_and_grad_accumulation(self):
        rng = np.random.default_rng(0)
        emb = Embedding("emb", 10, 4, dtype=np.float64, rng=rng)
        ids = Tensor.from_numpy(np.array([[1, 1, 3]], np.int64))
        y, cache = emb.forward(ids, CTX)
        assert y.shape == (1, 3, 4)
        emb.backward(cache, Tensor.from_numpy(np.ones((1, 3, 4))))
        g = emb.weight.grad.numpy()
        np.testing.assert_array_equal(g[1], [2, 2, 2, 2])  # id 1 twice
        np.testing.assert_array_equal(g[0], [0, 0, 0, 0])


class TestLayerNormModule:
    def test_grad_dtype_follows_param(self):
        ln = LayerNorm("ln", 8, dtype=np.float16)
        x = Tensor.from_numpy(np.random.default_rng(0).standard_normal((2, 8)).astype(np.float16))
        y, cache = ln.forward(x, CTX)
        ln.backward(cache, Tensor.from_numpy(np.ones((2, 8), np.float16)))
        assert ln.gamma.grad.dtype == np.float16


class TestParameter:
    def test_accumulate_adds_in_fp32(self):
        p = make_param("p", (4,), dtype=np.float16, init="zeros")
        p.accumulate_grad(Tensor.from_numpy(np.full(4, 1.0, np.float16)))
        p.accumulate_grad(Tensor.from_numpy(np.full(4, 2.0, np.float16)))
        np.testing.assert_array_equal(p.grad.numpy(), np.full(4, 3.0, np.float16))

    def test_shape_mismatch_rejected(self):
        p = make_param("p", (4,), dtype=np.float32, init="zeros")
        with pytest.raises(ValueError, match="shape"):
            p.accumulate_grad(Tensor.from_numpy(np.zeros(5, np.float32)))

    def test_grad_ready_hook_fires_once(self):
        p = make_param("p", (4,), dtype=np.float32, init="zeros")
        calls = []
        p.grad_ready_hook = calls.append
        p.accumulate_grad(Tensor.from_numpy(np.ones(4, np.float32)))
        p.accumulate_grad(Tensor.from_numpy(np.ones(4, np.float32)))
        assert calls == [p]  # only the first accumulation

    def test_zero_grad_frees(self):
        d = Device(SPEC)
        p = make_param("p", (100,), dtype=np.float32, init="zeros", device=d)
        g = Tensor.from_numpy(np.ones(100, np.float32), device=d)
        p.accumulate_grad(g)
        assert p.grad is not None
        p.zero_grad()
        assert p.grad is None

    def test_make_param_validation(self):
        with pytest.raises(ValueError, match="rng"):
            make_param("p", (2,), init="normal")
        with pytest.raises(ValueError, match="unknown init"):
            make_param("p", (2,), init="uniform")


class TestModuleRegistry:
    def test_duplicate_names_rejected(self):
        m = Module("m")
        m.register_parameter(make_param("w", (2,), init="zeros"))
        with pytest.raises(ValueError, match="duplicate"):
            m.register_parameter(make_param("w", (2,), init="zeros"))

    def test_parameters_deterministic_order(self):
        rng = np.random.default_rng(0)
        lin = Linear("l", 4, 4, dtype=np.float32, rng=rng)
        names = [p.name for p in lin.parameters()]
        assert names == ["l.weight", "l.bias"]

    def test_num_parameters(self):
        rng = np.random.default_rng(0)
        lin = Linear("l", 4, 3, dtype=np.float32, rng=rng)
        assert lin.num_parameters() == 4 * 3 + 3


class TestCache:
    def test_free_releases_owned_only(self):
        d = Device(SPEC)
        owned = Tensor.zeros((10,), np.float32, device=d)
        referenced = Tensor.zeros((10,), np.float32, device=d)
        c = Cache()
        c.own(a=owned)
        c.ref(b=referenced)
        c.free()
        assert owned.freed
        assert not referenced.freed
        referenced.free()

    def test_free_recurses_into_children(self):
        inner_t = Tensor.zeros((4,), np.float32)
        inner = Cache()
        inner.own(x=inner_t)
        outer = Cache()
        outer.child("inner", inner)
        outer.free()
        assert inner_t.freed

    def test_free_is_idempotent(self):
        t = Tensor.zeros((4,), np.float32)
        c = Cache()
        c.own(x=t)
        c.free()
        c.free()  # second free must not raise

    def test_own_list(self):
        ts = [Tensor.zeros((2,), np.float32) for _ in range(3)]
        c = Cache()
        c.own_list("hs", ts)
        assert c["hs"] == ts
        c.free()
        assert all(t.freed for t in ts)
