"""Hardware specs and cluster topology (paper Section 10.1 numbers)."""

import pytest

from repro.hardware.specs import DGX2, INFINIBAND_EDR, NVSWITCH, V100_32GB
from repro.hardware.topology import ClusterTopology
from repro.utils.units import GB


def test_v100_spec_matches_paper():
    assert V100_32GB.memory_bytes == 32 * int(GB)
    assert V100_32GB.peak_flops == pytest.approx(125e12)


def test_interconnect_cliff():
    # Section 10.2: 300 GB/s NVSwitch vs 12.5 GB/s InfiniBand EDR per link.
    assert NVSWITCH.bandwidth_bytes_per_s == pytest.approx(300 * GB)
    assert INFINIBAND_EDR.bandwidth_bytes_per_s == pytest.approx(12.5 * GB)
    assert NVSWITCH.bandwidth_bytes_per_s / INFINIBAND_EDR.bandwidth_bytes_per_s == 24


def test_paper_cluster_is_400_gpus():
    topo = ClusterTopology()
    assert topo.world_size == 400
    assert topo.n_nodes == 25
    assert DGX2.gpus_per_node == 16


def test_rank_to_node_mapping():
    topo = ClusterTopology()
    assert topo.node_of(0) == 0
    assert topo.node_of(15) == 0
    assert topo.node_of(16) == 1
    assert topo.local_rank(17) == 1
    assert topo.same_node(0, 15)
    assert not topo.same_node(15, 16)


def test_rank_bounds_checked():
    topo = ClusterTopology.for_world_size(32)
    with pytest.raises(ValueError):
        topo.node_of(32)
    with pytest.raises(ValueError):
        topo.node_of(-1)


def test_for_world_size_rounds_up_nodes():
    topo = ClusterTopology.for_world_size(17)
    assert topo.n_nodes == 2
    assert topo.world_size == 17


def test_mp_group_within_node_uses_nvswitch():
    topo = ClusterTopology()
    mp_group = topo.mp_groups(16)[0]
    assert not topo.group_spans_nodes(mp_group)
    assert topo.link_for_group(mp_group) is NVSWITCH


def test_dp_group_across_nodes_uses_infiniband():
    topo = ClusterTopology()
    dp_group = topo.dp_groups(16)[0]
    assert topo.group_spans_nodes(dp_group)
    assert topo.link_for_group(dp_group) is INFINIBAND_EDR


def test_dp_mp_decomposition_partitions_all_ranks():
    topo = ClusterTopology.for_world_size(64)
    mp = 4
    dp_groups = topo.dp_groups(mp)
    mp_groups = topo.mp_groups(mp)
    all_dp = sorted(r for g in dp_groups for r in g)
    all_mp = sorted(r for g in mp_groups for r in g)
    assert all_dp == list(range(64))
    assert all_mp == list(range(64))
    assert len(dp_groups) == mp
    assert len(mp_groups) == 64 // mp


def test_invalid_mp_degree_rejected():
    topo = ClusterTopology.for_world_size(64)
    with pytest.raises(ValueError):
        topo.mp_groups(3)
    with pytest.raises(ValueError):
        topo.dp_groups(0)


def test_empty_group_rejected():
    topo = ClusterTopology.for_world_size(16)
    with pytest.raises(ValueError):
        topo.group_spans_nodes([])


def test_world_size_cannot_exceed_capacity():
    with pytest.raises(ValueError):
        ClusterTopology(n_nodes=1, world_size=17)
