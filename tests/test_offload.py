"""ZeRO-Offload: placement moves, the math does not.

The offload engine's core contract mirrors the ZeRO-DP one: parking the
fp32 optimizer state (and optionally the gradient shard) in host DRAM
must leave the training trajectory bitwise identical to the all-device
engines, at every stage. Delayed parameter update is the single
deliberate numerical change and is pinned by an explicit staleness
contract rather than a tolerance. Around that core: byte accounting on
both memory pools, the PCIe stream's two-lane timeline, checkpoint
round-trips that are placement-independent, composition with fault
injection / elastic recovery, and the closed-form step-time cost model.
"""

import numpy as np
import pytest

from repro import Cluster, FaultPlan, GPTConfig, Supervisor, ZeROConfig
from repro.comm.ledger import CommLedger
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec, InterconnectSpec
from repro.memsim.device import HostMemory
from repro.memsim.errors import InvalidFreeError, OutOfMemoryError
from repro.offload.cost_model import OffloadCostModel, relative_error
from repro.offload.engine import OffloadConfig
from repro.offload.host_optim import HostAdamState, HostTensor, cpu_adam_seconds
from repro.offload.streams import PCIeStream
from repro.optim.adam import AdamHyperparams
from repro.parallel.engine import EngineConfig
from repro.runtime import virtual_rank_context
from repro.zero.checkpoint_io import (
    latest_checkpoint,
    load_checkpoint_resharded,
    save_checkpoint,
)
from repro.zero.factory import build_model_and_engine

pytestmark = pytest.mark.offload

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)
STEPS = 4


def train_run(stage, *, world=2, steps=STEPS, **zero_kw):
    """Train a tiny model; return per-rank (losses, master, params, host_bytes,
    step_times)."""
    cluster = Cluster(world, gpu=GPU, timeout_s=60.0)

    def fn(ctx):
        zero = ZeROConfig(
            stage=stage, checkpoint_activations=False, memory_defrag=False, **zero_kw
        )
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
            engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
        )
        losses, times = [], []
        for step in range(steps):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            result = engine.train_step(ids, tgt)
            losses.append(result.loss)
            times.append(result.step_time_model_s)
        if stage == 3:
            params = engine.param_shard.data.copy()
        else:
            params = np.concatenate(
                [p.data.numpy().reshape(-1) for p in model.parameters()]
            )
        return (
            losses,
            engine.opt_state.master.data.copy(),
            params,
            ctx.host.allocated_bytes,
            times,
        )

    return cluster.run(fn)


@pytest.fixture(scope="module")
def all_device_baseline():
    """All-device reference trajectories, one per stage."""
    return {stage: train_run(stage) for stage in (1, 2, 3)}


# -- bitwise equivalence (DPU off) ------------------------------------------


@pytest.mark.parametrize(
    "stage, off_grads",
    [(1, False), (2, False), (2, True), (3, False), (3, True)],
)
def test_offload_bitwise_identical_to_all_device(stage, off_grads, all_device_baseline):
    """Host-resident Adam (+ host gradient shard) changes placement only."""
    off = train_run(stage, offload_optimizer=True, offload_gradients=off_grads)
    ref = all_device_baseline[stage]
    for rank in range(2):
        assert off[rank][0] == ref[rank][0], f"rank {rank} losses diverged"
        np.testing.assert_array_equal(off[rank][1], ref[rank][1])
        np.testing.assert_array_equal(off[rank][2], ref[rank][2])


def test_offload_places_state_on_host_and_reports_step_time(all_device_baseline):
    off = train_run(2, offload_optimizer=True, offload_gradients=True)
    ref = all_device_baseline[2]
    for rank in range(2):
        # 12 bytes/element of Adam state per rank moved off-device, at least.
        assert off[rank][3] >= 12 * len(off[rank][1]) * 2
        assert ref[rank][3] == 0  # nothing on the host without offload
        assert all(t > 0.0 for t in off[rank][4])  # PCIe/Adam timeline ran


# -- delayed parameter update: the staleness contract ------------------------


@pytest.mark.parametrize("stage", [1, 2, 3])
def test_dpu_staleness_contract(stage):
    """With one-step DPU, fp16 params after step t equal the cast of the
    master weights after step t-1 — exactly one step stale, no more."""
    cluster = Cluster(2, gpu=GPU, timeout_s=60.0)

    def fn(ctx):
        zero = ZeROConfig(
            stage=stage, checkpoint_activations=False, memory_defrag=False,
            offload_optimizer=True, delayed_param_update=True,
        )
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
            engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
        )
        history = []
        for step in range(STEPS):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            engine.train_step(ids, tgt)
            if stage == 3:
                shard = engine.param_shard.data.copy()
            else:
                full = np.concatenate(
                    [p.data.numpy().reshape(-1) for p in model.parameters()]
                )
                # partition_bounds pads to the world size; trim to real params
                hi = min(engine.part_hi, len(full))
                shard = full[engine.part_lo : hi]
            history.append((shard, engine.opt_state.master.data.copy()))
        return history

    for history in cluster.run(fn):
        for t in range(1, STEPS):
            params_t = history[t][0]
            master_prev = history[t - 1][1][: len(params_t)]
            master_now = history[t][1][: len(params_t)]
            # non-vacuous: the master really moved this step...
            assert not np.array_equal(master_now, master_prev)
            # ...and the served params are last step's master, not this one's
            np.testing.assert_array_equal(params_t, master_prev.astype(np.float32))


# -- PCIe stream --------------------------------------------------------------

LINK = InterconnectSpec(name="test-link", bandwidth_bytes_per_s=100.0, latency_s=1.0)


def test_stream_serializes_per_lane_and_is_full_duplex():
    st = PCIeStream(LINK)
    a = st.copy_async(100, "d2h", submit_t=0.0)  # wire: 1s latency + 1s bytes
    b = st.copy_async(100, "d2h", submit_t=0.5)  # queues behind a
    c = st.copy_async(100, "h2d", submit_t=0.0)  # opposite lane: no contention
    assert (a.start_t, a.done_t) == (0.0, 2.0)
    assert (b.start_t, b.done_t) == (2.0, 4.0)
    assert b.queued_s == 1.5 and b.wire_s == 2.0
    assert (c.start_t, c.done_t) == (0.0, 2.0)
    assert st.synchronize([a, c], at=0.0) == 2.0
    assert st.synchronize(at=3.0) == 4.0  # everything, from a later clock
    assert st.lane_busy_s("d2h") == 4.0
    assert st.lane_free_t("h2d") == 2.0
    st.reset()
    assert st.handles == [] and st.lane_free_t("d2h") == 0.0


def test_stream_records_traffic_in_comm_ledger():
    ledger = CommLedger(rank=0)
    st = PCIeStream(LINK, ledger=ledger, rank=0)
    st.copy_async(64, "d2h", phase="offload-grad")
    st.copy_async(32, "h2d", phase="offload-param")
    st.copy_async(0, "d2h")  # zero-byte copies leave no ledger trace
    assert ledger.by_op() == {"d2h": 64.0, "h2d": 32.0}
    assert ledger.by_phase() == {"offload-grad": 64.0, "offload-param": 32.0}


def test_stream_rejects_bad_copies():
    st = PCIeStream(LINK)
    with pytest.raises(ValueError):
        st.copy_async(10, "sideways")
    with pytest.raises(ValueError):
        st.copy_async(-1, "d2h")


# -- host memory pool accounting ---------------------------------------------


def test_host_pool_stats_and_oom():
    host = HostMemory(100, name="test-host")
    handle = host.alloc(60, "opt")
    assert host.allocated_bytes == 60 and host.free_bytes == 40
    assert host.live_allocations == 1 and host.alloc_count == 1
    with pytest.raises(OutOfMemoryError):
        host.alloc(50, "too-big")
    host.free(handle)
    assert host.allocated_bytes == 0 and host.max_allocated_bytes == 60
    with pytest.raises(InvalidFreeError):
        host.free(handle)


def test_host_tensors_account_every_byte():
    host = HostMemory(10**6)
    t = HostTensor(10, np.float32, host, tag="grad")
    assert t.nbytes == 40 and host.allocated_bytes == 40
    st = HostAdamState(100, host=host)
    assert st.nbytes == 1200  # master + m + v, fp32
    assert host.allocated_bytes == 1240
    st.init_master(np.arange(100, dtype=np.float32))
    np.testing.assert_array_equal(st.master.numpy(), np.arange(100, dtype=np.float32))
    st.free()
    t.free()
    assert host.allocated_bytes == 0
    with pytest.raises(ValueError):
        t.free()  # double free is a bug, not a no-op


def test_host_pool_overflow_fails_loudly():
    small = HostMemory(100)
    with pytest.raises(OutOfMemoryError):
        HostAdamState(100, host=small)  # needs 1200 bytes


def test_meta_host_tensors_still_account():
    """Meta mode skips arrays but never byte accounting."""
    host = HostMemory(10**6)
    st = HostAdamState(50, host=host, meta=True)
    assert st.is_meta and host.allocated_bytes == 600
    with pytest.raises(ValueError):
        st.master.numpy()
    st.free()
    assert host.allocated_bytes == 0


def test_offload_moves_optimizer_bytes_off_device():
    """Meta engines: device residency drops by at least the Adam-state
    bytes, and the host picks up exactly the offloaded shards."""

    def build(offload):
        ctx = virtual_rank_context(2, gpu=GPU)
        zero = ZeROConfig(
            stage=2, memory_defrag=False,
            offload_optimizer=offload, offload_gradients=offload,
        )
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, meta=True
        )
        itemsize = np.dtype(model.dtype).itemsize
        return ctx, engine.part_numel * 12, engine.part_numel * itemsize

    ctx_dev, adam_bytes, grad_bytes = build(offload=False)
    ctx_off, _, _ = build(offload=True)
    assert ctx_dev.host.allocated_bytes == 0
    assert ctx_off.host.allocated_bytes == adam_bytes + grad_bytes
    saved = ctx_dev.device.allocated_bytes - ctx_off.device.allocated_bytes
    assert saved >= adam_bytes


# -- configuration validation -------------------------------------------------


def test_zero_config_rejects_invalid_offload_combinations():
    with pytest.raises(ValueError):
        ZeROConfig(stage=0, offload_optimizer=True)
    with pytest.raises(ValueError):
        ZeROConfig(stage=1, offload_optimizer=True, offload_gradients=True)
    with pytest.raises(ValueError):
        ZeROConfig(stage=2, offload_gradients=True)  # needs the optimizer too
    with pytest.raises(ValueError):
        ZeROConfig(stage=2, delayed_param_update=True)
    label = ZeROConfig(
        stage=2, offload_optimizer=True, offload_gradients=True,
        delayed_param_update=True,
    ).label
    assert "off" in label and "DPU" in label


def test_offload_config_rejects_invalid_combinations():
    with pytest.raises(ValueError):
        OffloadConfig(offload_optimizer=False, offload_gradients=True)
    with pytest.raises(ValueError):
        OffloadConfig(offload_optimizer=False, delayed_param_update=True)
    with pytest.raises(ValueError):
        OffloadConfig(cpu_adam_elements_per_s=0.0)


def test_unpartitioned_engine_rejects_offload():
    ctx = virtual_rank_context(1, gpu=GPU)
    with pytest.raises(ValueError, match="does not support offload"):
        build_model_and_engine(
            ctx, CFG, ZeROConfig(stage=0), dp_group=ctx.world, meta=True,
            engine_config=EngineConfig(offload=OffloadConfig()),
        )


# -- checkpoints: placement-independent -------------------------------------


def test_checkpoint_roundtrip_is_placement_independent(tmp_path, all_device_baseline):
    """Host-resident optimizer state checkpoints and resumes bitwise — into
    an offloaded engine or an all-device one."""
    root = tmp_path / "ckpts"
    offload_kw = dict(offload_optimizer=True, offload_gradients=True)

    def run_phase(resume, **zero_kw):
        cluster = Cluster(2, gpu=GPU, timeout_s=60.0)

        def fn(ctx):
            zero = ZeROConfig(
                stage=2, checkpoint_activations=False, memory_defrag=False, **zero_kw
            )
            model, engine = build_model_and_engine(
                ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
                engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
            )
            if resume:
                load_checkpoint_resharded(engine, root / "step2")
            losses = []
            for step in range(engine.step_count, STEPS):
                ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
                losses.append(engine.train_step(ids, tgt).loss)
                if not resume and engine.step_count == 2:
                    save_checkpoint(engine, root / "step2")
            return losses, engine.opt_state.master.data.copy()

        return cluster.run(fn)

    run_phase(resume=False, **offload_kw)  # 2 steps offloaded, then save
    resumed_off = run_phase(resume=True, **offload_kw)
    resumed_dev = run_phase(resume=True)  # same checkpoint, all-device
    ref = all_device_baseline[2]
    for rank in range(2):
        assert resumed_off[rank][0] == ref[rank][0][2:]
        assert resumed_dev[rank][0] == ref[rank][0][2:]
        np.testing.assert_array_equal(resumed_off[rank][1], ref[rank][1])
        np.testing.assert_array_equal(resumed_dev[rank][1], ref[rank][1])


# -- composition with fault injection / elastic recovery ---------------------


@pytest.mark.faults
def test_offload_composes_with_elastic_recovery(tmp_path):
    """PR-1 composition: kill one of three ranks mid-run with the optimizer
    host-resident; the supervisor re-forms a 2-rank world from the durable
    checkpoint and the recovered trajectory matches an uninterrupted 2-rank
    resume, bitwise."""
    total_steps, ckpt_every = 6, 2
    root = tmp_path / "ckpts"

    def make_fn(resume_root):
        def train_fn(ctx):
            zero = ZeROConfig(
                stage=2, checkpoint_activations=False, memory_defrag=False,
                offload_optimizer=True, offload_gradients=True,
            )
            model, engine = build_model_and_engine(
                ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
                engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
            )
            latest = latest_checkpoint(resume_root)
            if latest is not None:
                load_checkpoint_resharded(engine, latest)
            losses = []
            for step in range(engine.step_count, total_steps):
                ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
                losses.append(engine.train_step(ids, tgt).loss)
                if engine.step_count % ckpt_every == 0:
                    save_checkpoint(engine, root / f"step{engine.step_count}")
            return losses, engine.opt_state.master.data.copy()

        return train_fn

    plan = FaultPlan().kill_rank(1, at_step=4)
    sup = Supervisor(3, gpu=GPU, fault_plan=plan, timeout_s=15.0)
    report = sup.run(make_fn(root))
    assert report.restarts == 1 and report.final_world_size == 2

    def ref_resume(ctx):
        zero = ZeROConfig(
            stage=2, checkpoint_activations=False, memory_defrag=False,
            offload_optimizer=True, offload_gradients=True,
        )
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
            engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
        )
        load_checkpoint_resharded(engine, root / "step2")
        losses = []
        for step in range(engine.step_count, total_steps):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            losses.append(engine.train_step(ids, tgt).loss)
        return losses, engine.opt_state.master.data.copy()

    ref = Cluster(2, gpu=GPU, timeout_s=15.0).run(ref_resume)
    for rank in range(2):
        assert report.results[rank][0] == ref[rank][0]
        np.testing.assert_array_equal(report.results[rank][1], ref[rank][1])


# -- cost model ---------------------------------------------------------------


def test_cpu_adam_seconds_model():
    assert cpu_adam_seconds(0) == 0.0
    assert cpu_adam_seconds(10**9) == pytest.approx(50e-6 + 1.0)
    assert cpu_adam_seconds(10**6, elements_per_s=10**6) == pytest.approx(50e-6 + 1.0)


def test_cost_model_prediction_shape():
    model = OffloadCostModel(CFG, gpu=GPU)
    pred = model.predict_step(batch=2, seq_len=16, nd=2, offload_gradients=True)
    assert pred.step_s >= pred.compute_s > 0.0
    assert pred.grads_ready_s >= pred.compute_s - pred.cpu_adam_s
    assert 0.0 < pred.overlap_efficiency <= 1.0
    assert relative_error(1.0, 2.0) == pytest.approx(0.5)


def test_cost_model_tracks_simulated_timeline():
    """Acceptance bound: closed-form step time within 5% of the simulated
    transfer timeline across stages, streaming, and DPU."""
    from repro.experiments.offload_sweep import run_time

    rows = run_time()
    assert len(rows) == 4
    for row in rows:
        assert row.rel_err <= 0.05, row
