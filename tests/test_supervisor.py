"""Elastic recovery: rank failure -> smaller world -> re-shard -> bitwise resume.

The acceptance property: an injected permanent rank failure mid-run is
recovered by the Supervisor — the world re-forms at a smaller DP degree,
stage-1/2/3 state re-shards from the last durable checkpoint, and the
post-recovery trajectory matches an uninterrupted run resumed from the
same checkpoint bitwise.
"""

import numpy as np
import pytest

from repro import (
    Cluster,
    FaultPlan,
    GPTConfig,
    RestartPolicy,
    RetryPolicy,
    Supervisor,
    ZeROConfig,
)
from repro.comm.faults import RankKilledError
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.optim.adam import AdamHyperparams
from repro.parallel.engine import EngineConfig
from repro.zero.checkpoint_io import (
    latest_checkpoint,
    load_checkpoint_resharded,
    save_checkpoint,
)
from repro.zero.factory import build_model_and_engine

pytestmark = pytest.mark.faults

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)
TOTAL_STEPS = 6
CKPT_EVERY = 2


def build(ctx, stage):
    zero = ZeROConfig(stage=stage, checkpoint_activations=False, memory_defrag=False)
    return build_model_and_engine(
        ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
        engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
    )


def make_train_fn(root, stage):
    """A re-entrant training function: resume from the latest durable
    checkpoint, train to TOTAL_STEPS, checkpoint every CKPT_EVERY steps."""

    def train_fn(ctx):
        model, engine = build(ctx, stage)
        latest = latest_checkpoint(root)
        if latest is not None:
            load_checkpoint_resharded(engine, latest)
        losses = []
        for step in range(engine.step_count, TOTAL_STEPS):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            losses.append(engine.train_step(ids, tgt).loss)
            if engine.step_count % CKPT_EVERY == 0:
                save_checkpoint(engine, root / f"step{engine.step_count}")
        return losses, engine.opt_state.master.data.copy()

    return train_fn


@pytest.mark.parametrize("stage", [1, 2, 3])
def test_rank_failure_recovered_bitwise(stage, tmp_path):
    """Kill one of three ranks at step 4; the supervisor re-forms a 2-rank
    world from the step-2 checkpoint and the recovered trajectory equals an
    uninterrupted 2-rank resume from that same checkpoint, bitwise."""
    root = tmp_path / "ckpts"
    plan = FaultPlan().kill_rank(1, at_step=4)
    sup = Supervisor(3, gpu=GPU, fault_plan=plan, timeout_s=15.0)
    report = sup.run(make_train_fn(root, stage))

    assert report.restarts == 1
    assert report.final_world_size == 2
    assert len(report.events) == 1
    assert report.events[0].killed_ranks == (1,)
    assert report.events[0].world_before == 3 and report.events[0].world_after == 2
    assert plan.killed_ranks == [1]

    # Reference: a fresh 2-rank world resuming from the same (3-rank,
    # step-2) checkpoint, never interrupted.
    def ref_fn(ctx):
        model, engine = build(ctx, stage)
        load_checkpoint_resharded(engine, root / "step2")
        losses = []
        for step in range(engine.step_count, TOTAL_STEPS):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            losses.append(engine.train_step(ids, tgt).loss)
        return losses, engine.opt_state.master.data.copy()

    ref = Cluster(2, gpu=GPU, timeout_s=15.0).run(ref_fn)
    for rank in range(2):
        assert report.results[rank][0] == ref[rank][0]  # losses bitwise
        np.testing.assert_array_equal(report.results[rank][1], ref[rank][1])


def test_transient_escalation_restarts_same_world(tmp_path):
    """A transient fault that exhausts its retry budget fails the attempt;
    the supervisor relaunches at the *same* world size (nobody died) and
    the retry clears."""
    root = tmp_path / "ckpts"
    plan = FaultPlan().fail_collective(rank=0, op="reduce", nth=1, times=3)
    sup = Supervisor(
        2, gpu=GPU, fault_plan=plan, timeout_s=15.0,
        retry_policy=RetryPolicy(max_attempts=2, base_backoff_s=0.001),
    )
    report = sup.run(make_train_fn(root, stage=2))
    assert report.restarts == 1
    assert report.final_world_size == 2
    assert report.events[0].killed_ranks == ()
    # The completed run trained all the way through.
    losses, _ = report.results[0]
    assert len(losses) == TOTAL_STEPS


def test_supervisor_gives_up_after_max_restarts(tmp_path):
    root = tmp_path / "ckpts"
    plan = FaultPlan().kill_rank(0, at_step=1)
    sup = Supervisor(
        2, gpu=GPU, fault_plan=plan, timeout_s=15.0,
        policy=RestartPolicy(max_restarts=0),
    )
    with pytest.raises(RankKilledError):
        sup.run(make_train_fn(root, stage=2))


def test_supervisor_respects_min_world_size(tmp_path):
    root = tmp_path / "ckpts"
    plan = FaultPlan().kill_rank(1, at_step=1)
    sup = Supervisor(
        2, gpu=GPU, fault_plan=plan, timeout_s=15.0,
        policy=RestartPolicy(max_restarts=3, min_world_size=2),
    )
    with pytest.raises(RankKilledError):
        sup.run(make_train_fn(root, stage=1))


def test_programming_errors_propagate_without_restart(tmp_path):
    sup = Supervisor(2, gpu=GPU, timeout_s=15.0)
    calls = []

    def bad_fn(ctx):
        calls.append(ctx.rank)
        raise KeyError("not a comm failure")

    with pytest.raises(KeyError):
        sup.run(bad_fn)
    assert sorted(calls) == [0, 1]  # one attempt, no relaunch


def test_two_sequential_failures_shrink_twice(tmp_path):
    """4 ranks -> kill one at step 2 -> 3 ranks -> kill one at step 4 ->
    2 ranks finish the job; every transition re-shards."""
    root = tmp_path / "ckpts"
    plan = FaultPlan().kill_rank(3, at_step=2).kill_rank(2, at_step=4)
    sup = Supervisor(4, gpu=GPU, fault_plan=plan, timeout_s=15.0)
    report = sup.run(make_train_fn(root, stage=2))
    assert report.restarts == 2
    assert report.final_world_size == 2
    assert [e.world_after for e in report.events] == [3, 2]
    losses, _ = report.results[0]
    assert losses  # the surviving world completed the remaining steps
