"""Raw block allocator: first-fit, coalescing, fragmentation semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.block_allocator import BlockAllocator
from repro.memsim.errors import FragmentationError, InvalidFreeError, OutOfMemoryError

KB = 1024


def make(capacity=64 * KB, alignment=512):
    return BlockAllocator(capacity, alignment=alignment, name="t")


def test_alloc_free_roundtrip_restores_capacity():
    a = make()
    e = a.alloc(10 * KB)
    assert a.allocated_bytes == 10 * KB
    a.free(e)
    assert a.allocated_bytes == 0
    assert a.largest_free_block == a.capacity


def test_alignment_rounds_up():
    a = make()
    e = a.alloc(1)
    assert e.size == 512
    assert a.allocated_bytes == 512


def test_first_fit_reuses_earliest_hole():
    a = make()
    e1 = a.alloc(1 * KB)
    e2 = a.alloc(1 * KB)
    e3 = a.alloc(1 * KB)
    a.free(e1)
    a.free(e3)
    e4 = a.alloc(512)
    assert e4.offset == e1.offset  # earliest hole wins
    del e2


def test_exhaustion_raises_oom():
    a = make(capacity=4 * KB)
    a.alloc(4 * KB)
    with pytest.raises(OutOfMemoryError):
        a.alloc(512)


def test_fragmentation_error_when_total_free_would_suffice():
    # Allocate 8 x 8KB, free alternating -> 32KB free but max hole 8KB.
    a = make(capacity=64 * KB)
    extents = [a.alloc(8 * KB) for _ in range(8)]
    for e in extents[::2]:
        a.free(e)
    assert a.free_bytes == 32 * KB
    with pytest.raises(FragmentationError) as exc_info:
        a.alloc(16 * KB)
    assert isinstance(exc_info.value, OutOfMemoryError)  # subtype relation
    assert exc_info.value.free == 32 * KB
    assert exc_info.value.largest_free == 8 * KB


def test_coalesce_heals_fragmentation():
    a = make(capacity=64 * KB)
    extents = [a.alloc(8 * KB) for _ in range(8)]
    for e in extents:
        a.free(e)
    # All free blocks coalesced back into one.
    assert a.largest_free_block == a.capacity
    a.alloc(64 * KB)  # must fit whole again


def test_double_free_raises():
    a = make()
    e = a.alloc(1 * KB)
    a.free(e)
    with pytest.raises(InvalidFreeError):
        a.free(e)


def test_foreign_extent_free_raises():
    a, b = make(), make()
    e = a.alloc(1 * KB)
    with pytest.raises(InvalidFreeError):
        b.free(e)


def test_stats_fragmentation_ratio():
    a = make(capacity=64 * KB)
    extents = [a.alloc(8 * KB) for _ in range(8)]
    for e in extents[::2]:
        a.free(e)
    s = a.stats()
    assert s.external_fragmentation == pytest.approx(1 - 8 / 32)
    assert s.n_free_blocks == 4


def test_zero_or_negative_alloc_rejected():
    a = make()
    with pytest.raises(ValueError):
        a.alloc(0)
    with pytest.raises(ValueError):
        a.alloc(-5)


def test_bad_construction_rejected():
    with pytest.raises(ValueError):
        BlockAllocator(0)
    with pytest.raises(ValueError):
        BlockAllocator(1024, alignment=3)


def test_tags_preserved():
    a = make()
    e = a.alloc(1 * KB, tag="weights")
    assert e.tag == "weights"
    assert a.live_extents()[0].tag == "weights"


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(1, 8 * KB)),
        min_size=1,
        max_size=120,
    )
)
def test_invariants_hold_under_random_workload(ops):
    """Property: region map always covers [0, capacity) without overlap,
    the free list stays coalesced, counters stay in sync."""
    a = make(capacity=128 * KB)
    live = []
    for kind, size in ops:
        if kind == "alloc":
            try:
                live.append(a.alloc(size))
            except OutOfMemoryError:
                pass
        elif live:
            a.free(live.pop(size % len(live)))
        a.check_invariants()
    for e in live:
        a.free(e)
    a.check_invariants()
    assert a.allocated_bytes == 0


@settings(max_examples=30, deadline=None)
@given(sizes=st.lists(st.integers(1, 4 * KB), min_size=1, max_size=50))
def test_allocated_bytes_equals_sum_of_aligned_sizes(sizes):
    a = make(capacity=1024 * KB)
    extents = [a.alloc(s) for s in sizes]
    assert a.allocated_bytes == sum(a.aligned(s) for s in sizes)
    for e in extents:
        a.free(e)
    assert a.free_bytes == a.capacity
