"""Fail-slow defense: gray-failure injection -> detection -> eviction.

Three layers under test (docs/ARCHITECTURE.md §12):

* **Injection** — ``FaultPlan`` performance rules (``degrade_link`` /
  ``throttle_rank`` / ``jitter``) that never raise and only stretch the
  *simulated* clock: numerics stay bitwise identical to a fault-free run.
* **Detection** — ``repro.health.HealthMonitor``: row-aligned robust
  z-scores over the telemetry step spans, hysteresis so transient jitter
  never triggers, EWMA link estimates from priced comm events.
* **Remediation** — the ``Supervisor``'s ``slow-evict`` policy: the
  confirmed-slow rank is evicted via the elastic N->M re-shard, its perf
  rules are retired, and the resumed trajectory is bitwise-deterministic
  with step time back at the healthy-world analytic prediction.
"""

import numpy as np
import pytest

from repro import (
    Cluster,
    FaultPlan,
    GPTConfig,
    HealthConfig,
    HealthMonitor,
    RetryPolicy,
    SlowRankDetectedError,
    Supervisor,
    ZeROConfig,
    verify_recovery,
)
from repro.comm.costmodel import CommCostModel
from repro.comm.faults import LinkDegradeRule, RankJitterRule, RankThrottleRule
from repro.comm.ledger import CommEvent
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.hardware.topology import ClusterTopology
from repro.health.monitor import CONFIRMED, HEALTHY, SUSPECT
from repro.optim.adam import AdamHyperparams
from repro.restart import RestartKind
from repro.parallel.engine import EngineConfig
from repro.telemetry import TelemetrySession
from repro.zero.checkpoint_io import (
    latest_checkpoint,
    load_checkpoint_resharded,
    save_checkpoint,
)
from repro.zero.factory import build_model_and_engine

pytestmark = pytest.mark.failslow

# Low peak FLOPs so modeled compute dominates the priced step time — a
# compute throttle then moves the whole step, as on a real slow GPU.
GPU = GPUSpec("t", 2 * 10**9, 1e11)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)


def build(ctx, stage=2):
    zero = ZeROConfig(stage=stage, checkpoint_activations=False, memory_defrag=False)
    return build_model_and_engine(
        ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
        engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
    )


def run_steps(world, steps, *, plan=None, health=None, retry_policy=None):
    """Train ``steps`` real steps on a fresh cluster; returns
    (per-rank losses, session, cluster)."""
    session = TelemetrySession(health=health)
    cluster = Cluster(
        world, gpu=GPU, timeout_s=15.0, fault_plan=plan,
        retry_policy=retry_policy, telemetry=session,
    )

    def fn(ctx):
        model, engine = build(ctx)
        losses = []
        for step in range(steps):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            losses.append(engine.train_step(ids, tgt).loss)
        return losses

    return cluster.run(fn), session, cluster


# -- injection: rule validation and window mechanics ------------------------


class TestPerfRules:
    def test_validation(self):
        plan = FaultPlan()
        with pytest.raises(ValueError):
            plan.degrade_link(src=0, bw_factor=0.0)
        with pytest.raises(ValueError):
            plan.degrade_link(src=0, bw_factor=1.5)
        with pytest.raises(ValueError):
            plan.degrade_link(src=0, latency_add_s=-1.0)
        with pytest.raises(ValueError):
            plan.throttle_rank(rank=0, compute_factor=0.5)
        with pytest.raises(ValueError):
            plan.jitter(rank=0, sigma=-0.1)
        with pytest.raises(ValueError):
            plan.throttle_rank(rank=0, from_step=0)
        with pytest.raises(ValueError):
            plan.throttle_rank(rank=0, from_step=5, until_step=4)
        with pytest.raises(TypeError):
            plan.add_perf_rule(object())
        assert not plan.has_perf_rules  # nothing half-registered

    def test_builders_chain_and_register(self):
        plan = (FaultPlan(seed=3)
                .degrade_link(src=0, dst=1)
                .throttle_rank(rank=2)
                .jitter(rank=1))
        assert plan.has_perf_rules
        assert not FaultPlan().has_perf_rules

    def test_throttle_window(self):
        plan = FaultPlan().throttle_rank(
            rank=1, compute_factor=4.0, from_step=3, until_step=5
        )
        assert plan.compute_scale(1, 2) == 1.0
        assert plan.compute_scale(1, 3) == 4.0
        assert plan.compute_scale(1, 5) == 4.0
        assert plan.compute_scale(1, 6) == 1.0
        assert plan.compute_scale(0, 4) == 1.0  # wrong rank
        # One onset event total, not one per firing.
        onsets = [e for e in plan.events if e.kind == "throttle"]
        assert len(onsets) == 1 and onsets[0].op == "perf"

    def test_jitter_deterministic_and_bounded(self):
        a = FaultPlan(seed=9).jitter(rank=0, sigma=0.1)
        b = FaultPlan(seed=9).jitter(rank=0, sigma=0.1)
        scales = [a.compute_scale(0, s) for s in range(1, 8)]
        assert scales == [b.compute_scale(0, s) for s in range(1, 8)]
        assert all(s >= 1.0 for s in scales)
        assert len(set(scales)) > 1  # redrawn per step
        # Repeated calls for the same step agree (no hidden RNG state).
        assert a.compute_scale(0, 3) == b.compute_scale(0, 3)

    def test_adjust_alpha_beta_window_and_group_matching(self):
        plan = FaultPlan().degrade_link(
            src=1, bw_factor=0.25, latency_add_s=1e-6, from_step=5
        )
        alpha, beta = 1e-6, 1e-9
        plan.note_step(0, 4)  # window not yet open for rank 0's clock
        assert plan.adjust_alpha_beta(0, (0, 1), alpha, beta) == (alpha, beta)
        plan.note_step(0, 5)
        a2, b2 = plan.adjust_alpha_beta(0, (0, 1), alpha, beta)
        assert a2 == pytest.approx(alpha + 1e-6)
        assert b2 == pytest.approx(beta * 4.0)
        # Groups not containing the degraded link are untouched.
        assert plan.adjust_alpha_beta(0, (2, 3), alpha, beta) == (alpha, beta)

    def test_retire_perf_rules(self):
        plan = (FaultPlan()
                .throttle_rank(rank=1, compute_factor=4.0)
                .jitter(rank=1, sigma=0.1)
                .degrade_link(src=1)
                .degrade_link(src=0, dst=1)
                .degrade_link(src=0, dst=2))
        plan.note_step(0, 1)
        assert plan.compute_scale(1, 1) > 1.0
        assert plan.retire_perf_rules(1) == 4  # throttle, jitter, 2 links
        assert plan.compute_scale(1, 1) == 1.0
        assert plan.adjust_alpha_beta(0, (0, 1), 1e-6, 1e-9) == (1e-6, 1e-9)
        # The src=0,dst=2 link survives.
        assert plan.adjust_alpha_beta(0, (0, 2), 1e-6, 1e-9) != (1e-6, 1e-9)

    def test_rule_constructors_exported(self):
        plan = FaultPlan().add_perf_rule(
            RankThrottleRule(rank=0, compute_factor=2.0)
        ).add_perf_rule(RankJitterRule(rank=1)).add_perf_rule(
            LinkDegradeRule(src=0)
        )
        assert plan.has_perf_rules


class TestCostModelDegradation:
    def test_degraded_pricing(self):
        topo = ClusterTopology.for_world_size(4)
        plan = FaultPlan().degrade_link(src=1, bw_factor=0.25)
        healthy = CommCostModel(topo)
        degraded = CommCostModel(topo, perf=plan, perf_rank=0)
        ev = CommEvent(op="all_reduce", message_bytes=1 << 20, group_size=4,
                       group_ranks=(0, 1, 2, 3), phase="grad-reduce")
        assert degraded.event_time(ev) > healthy.event_time(ev)
        # PCIe copies never touch the link rules.
        h2d = CommEvent(op="h2d", message_bytes=1 << 20, group_size=1,
                        group_ranks=(0,), phase="other")
        assert degraded.event_time(h2d) == healthy.event_time(h2d)


# -- detection: monitor unit tests ------------------------------------------


class _FakeTracer:
    def __init__(self, rank):
        self.rank = rank
        self.instants = []

    def instant(self, name, **args):
        self.instants.append((name, args))


def feed_rows(monitor, rows):
    """Feed one duration per rank per row, like lockstep rank threads."""
    tracers = {r: _FakeTracer(r) for r in range(len(rows[0]))}
    for row in rows:
        for rank, duration in enumerate(row):
            monitor.on_step(tracers[rank], duration)
    return tracers


class TestHealthMonitor:
    def test_state_machine_confirms_persistent_straggler(self):
        cfg = HealthConfig(evict_on_confirm=False)
        mon = HealthMonitor(cfg, world_size=3)
        rows = [[1.0, 1.0, 1.0]] * 6 + [[1.0, 1.0, 4.0]] * 8
        feed_rows(mon, rows)
        assert mon.verdict(2) == CONFIRMED
        assert mon.verdict(0) == HEALTHY and mon.verdict(1) == HEALTHY
        assert mon.slowdown(2) > 3.0
        assert mon.confirmed_slow() == [2]
        kinds = [(t.rank, t.after) for t in mon.transitions]
        assert kinds == [(2, SUSPECT), (2, CONFIRMED)]

    def test_transient_spike_never_leaves_healthy(self):
        cfg = HealthConfig(evict_on_confirm=False)
        mon = HealthMonitor(cfg, world_size=2)
        rows = [[1.0, 1.0]] * 6 + [[1.0, 5.0]] + [[1.0, 1.0]] * 6
        feed_rows(mon, rows)
        assert mon.transitions == []
        assert mon.verdict(1) == HEALTHY

    def test_suspect_clears_with_hysteresis(self):
        cfg = HealthConfig(evict_on_confirm=False, suspect_after=2,
                           confirm_after=6, clear_after=2)
        mon = HealthMonitor(cfg, world_size=2)
        # Long enough to go suspect, then recover before confirm.
        rows = [[1.0, 1.0]] * 6 + [[1.0, 4.0]] * 4 + [[1.0, 1.0]] * 6
        feed_rows(mon, rows)
        assert [(t.after) for t in mon.transitions] == [SUSPECT, HEALTHY]
        assert mon.verdict(1) == HEALTHY

    def test_no_false_positives_under_jitter(self):
        rng = np.random.default_rng(5)
        cfg = HealthConfig(evict_on_confirm=False)
        mon = HealthMonitor(cfg, world_size=4)
        rows = [
            [1.0 * (1.0 + abs(rng.normal(0.0, 0.05))) for _ in range(4)]
            for _ in range(40)
        ]
        feed_rows(mon, rows)
        assert mon.transitions == []

    def test_confirm_raises_when_evicting(self):
        mon = HealthMonitor(HealthConfig(), world_size=2)
        rows = [[1.0, 1.0]] * 6 + [[1.0, 4.0]] * 10
        with pytest.raises(SlowRankDetectedError) as exc_info:
            feed_rows(mon, rows)
        assert exc_info.value.rank == 1
        assert exc_info.value.slowdown > 2.0
        assert exc_info.value.cause == "compute"

    def test_verdict_instants_and_gauges(self):
        from repro.telemetry.metrics import MetricsRegistry

        registry = MetricsRegistry()
        mon = HealthMonitor(
            HealthConfig(evict_on_confirm=False), world_size=2,
            registry=registry,
        )
        tracers = feed_rows(mon, [[1.0, 1.0]] * 6 + [[1.0, 4.0]] * 8)
        names = [n for t in tracers.values() for n, _ in t.instants]
        assert names.count("health-verdict") == 2
        assert registry.gauge("health_verdict", rank=1).value == 2
        assert registry.gauge("rank_slowdown_factor", rank=1).value > 3.0
        assert registry.counter("health_confirmed_slow", rank=1).value == 1

    def test_unbound_monitor_is_inert(self):
        mon = HealthMonitor(HealthConfig())
        mon.on_step(_FakeTracer(0), 1.0)  # no world bound: collect nothing
        assert mon.rows_evaluated() == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(window=0)
        with pytest.raises(ValueError):
            HealthConfig(slowdown_threshold=1.0)
        with pytest.raises(ValueError):
            HealthConfig(confirm_after=1, suspect_after=2)
        with pytest.raises(ValueError):
            HealthConfig(ewma_alpha=0.0)

    def test_verify_recovery_contract(self):
        ok = verify_recovery([1.0, 1.02, 0.98], 1.0)
        assert ok.ok and ok.ratio == pytest.approx(1.0)
        bad = verify_recovery([2.0, 2.0], 1.0)
        assert not bad.ok and bad.ratio == pytest.approx(2.0)
        assert not verify_recovery([], 1.0).ok


# -- engine integration: simulated clock stretches, numerics don't ----------


class TestEngineIntegration:
    def test_throttle_stretches_victim_clock_numerics_bitwise(self):
        steps = 5
        clean_losses, clean_session, _ = run_steps(2, steps)
        plan = FaultPlan(seed=1).throttle_rank(rank=1, compute_factor=4.0)
        slow_losses, slow_session, _ = run_steps(2, steps, plan=plan)
        # Gray failure: numerics are bitwise identical...
        assert slow_losses == clean_losses
        # ...the healthy rank's clock is untouched...
        assert (slow_session.tracers[0].step_durations
                == clean_session.tracers[0].step_durations)
        # ...and the victim's simulated step time is stretched hard.
        slow = slow_session.tracers[1].step_durations
        clean = clean_session.tracers[1].step_durations
        ratios = [s / c for s, c in zip(slow, clean)]
        assert min(ratios) > 2.5  # 4x compute on a compute-dominated step

    def test_degraded_link_inflates_priced_comm(self):
        steps = 4
        _, clean_session, _ = run_steps(2, steps)
        plan = FaultPlan(seed=1).degrade_link(
            src=1, bw_factor=0.05, latency_add_s=1e-3
        )
        losses, slow_session, _ = run_steps(2, steps, plan=plan)
        for rank in (0, 1):  # both members of the group pay the slow link
            slow = sum(slow_session.tracers[rank].step_durations)
            clean = sum(clean_session.tracers[rank].step_durations)
            assert slow > clean * 1.02

    def test_degraded_link_is_not_a_transient_fault(self):
        """Satellite: a slow link must never be misclassified by the PR 1
        retry path — no RetryEvents, no escalation, run completes."""
        steps = 4
        plan = FaultPlan(seed=1).degrade_link(
            src=1, bw_factor=0.05, latency_add_s=1e-4
        )
        losses, session, cluster = run_steps(
            2, steps, plan=plan,
            retry_policy=RetryPolicy(max_attempts=2, base_backoff_s=0.001),
        )
        assert all(len(l) == steps for l in losses)  # nothing escalated
        for ledger in cluster.ledgers:
            assert ledger.retries == []
        for tracer in session.tracers.values():
            assert not [i for i in tracer.instants if i.name.startswith("retry")]
        # The only fault-plan trace is the degrade onset event.
        assert [e.kind for e in plan.events] == ["degrade-link"]

    def test_health_disabled_is_byte_identical(self):
        """Acceptance: with monitoring off, behavior is byte-identical —
        same losses, same simulated clocks, no health artifacts."""
        steps = 5
        plain_losses, plain_session, _ = run_steps(2, steps)
        health = HealthMonitor(HealthConfig(evict_on_confirm=False))
        mon_losses, mon_session, _ = run_steps(2, steps, health=health)
        assert mon_losses == plain_losses
        for rank in (0, 1):
            assert (mon_session.tracers[rank].step_durations
                    == plain_session.tracers[rank].step_durations)
        assert plain_session.health is None
        assert all(t.health is None for t in plain_session.tracers.values())
        # And perf faults without telemetry change nothing at all.
        session = TelemetrySession()
        no_tel = Cluster(
            2, gpu=GPU, timeout_s=15.0,
            fault_plan=FaultPlan().throttle_rank(rank=1, compute_factor=8.0),
        )

        def fn(ctx):
            model, engine = build(ctx)
            out = []
            for step in range(steps):
                ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
                out.append(engine.train_step(ids, tgt).loss)
            return out

        assert no_tel.run(fn) == plain_losses


# -- remediation: end-to-end acceptance -------------------------------------


TOTAL_STEPS = 14
CKPT_EVERY = 2
ONSET_STEP = 5
CONFIRM_WITHIN = 6  # steps after onset by which the confirm must land


def make_train_fn(root, resumed):
    def train_fn(ctx):
        model, engine = build(ctx)
        latest = latest_checkpoint(root)
        if latest is not None:
            load_checkpoint_resharded(engine, latest)
        if ctx.rank == 0:
            resumed.append((ctx.world_size, engine.step_count))
        losses = []
        for step in range(engine.step_count, TOTAL_STEPS):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            losses.append(engine.train_step(ids, tgt).loss)
            if engine.step_count % CKPT_EVERY == 0:
                save_checkpoint(engine, root / f"step{engine.step_count}")
        return losses, engine.opt_state.master.data.copy()

    return train_fn


class TestSlowRankEviction:
    def test_e2e_throttled_rank_evicted_bitwise_and_recovers(self, tmp_path):
        """The acceptance scenario: persistent 4x throttle on rank 2 of 3
        from step 5, sigma=0.02 jitter on the healthy ranks. The monitor
        confirms within CONFIRM_WITHIN steps with zero false positives,
        the Supervisor evicts via N->M re-shard, the resumed trajectory
        is bitwise equal to an uninterrupted 2-rank resume, and step time
        returns to within 10% of the healthy-world analytic simulation."""
        root = tmp_path / "ckpts"
        plan = (FaultPlan(seed=11)
                .throttle_rank(rank=2, compute_factor=4.0, from_step=ONSET_STEP)
                .jitter(rank=0, sigma=0.02)
                .jitter(rank=1, sigma=0.02))
        health = HealthMonitor(HealthConfig())
        session = TelemetrySession(health=health)
        resumed = []
        sup = Supervisor(3, gpu=GPU, fault_plan=plan, timeout_s=15.0,
                         telemetry=session)
        report = sup.run(make_train_fn(root, resumed))

        # Remediation: one slow-evict, world 3 -> 2, nobody actually died.
        assert report.restarts == 1
        assert report.final_world_size == 2
        assert [e.kind for e in report.events] == [RestartKind.SLOW_EVICT]
        assert report.events[0].killed_ranks == (2,)
        assert plan.killed_ranks == []

        # Detection: confirmed within the latency bound, zero false
        # positives on the jittering healthy ranks, cause attributed.
        assert all(t.rank == 2 for t in health.transitions)
        confirms = [t for t in health.transitions if t.after == CONFIRMED]
        assert len(confirms) == 1
        assert confirms[0].row + 1 <= ONSET_STEP + CONFIRM_WITHIN
        assert confirms[0].cause == "compute"
        assert session.registry.counter(
            "health_confirmed_slow", rank=2
        ).value == 1
        assert session.registry.counter("supervisor_slow_evicts").value == 1

        # The victim's rules were retired: the survivor that inherited
        # rank 2's number... does not exist (world is 2), but a fresh
        # 3-rank probe of the plan shows the throttle is dead.
        assert plan.compute_scale(2, TOTAL_STEPS) == 1.0

        # Bitwise determinism: an uninterrupted 2-rank world resuming
        # from the same checkpoint produces the same losses and master.
        (_, resume_step_ignored), (resume_world, resume_step) = resumed
        assert resume_world == 2

        ref_session = TelemetrySession()

        def ref_fn(ctx):
            model, engine = build(ctx)
            load_checkpoint_resharded(engine, root / f"step{resume_step}")
            losses = []
            for step in range(engine.step_count, TOTAL_STEPS):
                ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
                losses.append(engine.train_step(ids, tgt).loss)
            return losses, engine.opt_state.master.data.copy()

        ref = Cluster(2, gpu=GPU, timeout_s=15.0, telemetry=ref_session).run(ref_fn)
        for rank in range(2):
            assert report.results[rank][0] == ref[rank][0]
            np.testing.assert_array_equal(report.results[rank][1], ref[rank][1])

        # Throughput-recovery contract: post-eviction simulated step time
        # within 10% of the healthy-world analytic prediction (the
        # fault-free reference priced on the same alpha-beta model; the
        # survivors' residual jitter is what the tolerance absorbs).
        n_final = TOTAL_STEPS - resume_step
        post = session.tracers[0].step_durations[-n_final:]
        ref_durations = ref_session.tracers[0].step_durations
        predicted = sum(ref_durations) / len(ref_durations)
        recovery = verify_recovery(post, predicted, tolerance=0.10)
        assert recovery.ok, recovery

        # Satellite: the summary's straggler column carries the verdict.
        summary = session.summary()
        assert "[suspect]" in summary or "[confirmed-slow]" in summary
