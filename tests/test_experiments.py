"""Experiment runners: each table/figure reproduces the paper's shape."""

import numpy as np
import pytest

from repro.experiments import common as xcommon
from repro.nn.transformer import GPTConfig
from repro.zero.config import PAPER_CONFIGS, C1, C4, C5, ZeROConfig


class TestCommon:
    def test_meta_memory_step_runs_and_reports(self):
        cfg = GPTConfig(n_layers=4, hidden=256, n_heads=4)
        res = xcommon.meta_memory_step(cfg, ZeROConfig(stage=2), n_gpus=64, mp=1, batch=4)
        assert res.fits
        assert res.peak_allocated_bytes > 0
        assert res.max_cached_bytes >= res.peak_allocated_bytes

    def test_oom_reported_not_raised(self):
        cfg = GPTConfig(n_layers=400, hidden=8192, n_heads=64)  # ~320B
        res = xcommon.meta_memory_step(cfg, ZeROConfig(stage=1), n_gpus=64, mp=1, batch=4)
        assert not res.fits
        assert res.oom_reason


class TestFig1:
    def test_analytic_values(self):
        from repro.experiments import fig1

        rows = {r.label: r.analytic_gb for r in fig1.analytic_rows()}
        assert rows["baseline"] == pytest.approx(120.0)
        assert rows["Pos"] == pytest.approx(31.4, abs=0.05)
        assert rows["Pos+g"] == pytest.approx(16.6, abs=0.05)
        assert rows["Pos+g+p"] == pytest.approx(1.88, abs=0.01)

    def test_measured_tracks_formula(self):
        from repro.experiments import fig1

        for stage, expected in [(0, 16.0), (2, 5.5)]:
            measured = fig1.measured_bytes_per_param(stage, world_size=4)
            assert measured == pytest.approx(expected, rel=0.15)


class TestTable1:
    def test_fit_boundary_matches_paper_boldface(self):
        from repro.experiments import table1

        cells = {(c.model, c.nd, c.stage): c for c in table1.run()}
        # Paper bold: 7.5B fits Pos at Nd>=64, Pos+g at Nd>=16, Pos+g+p at Nd>=4.
        assert cells[("7.5B", 64, 1)].fits_32gb and not cells[("7.5B", 16, 1)].fits_32gb
        assert cells[("7.5B", 16, 2)].fits_32gb and not cells[("7.5B", 4, 2)].fits_32gb
        assert cells[("7.5B", 4, 3)].fits_32gb
        # 1T fits only Pos+g+p at Nd=1024.
        assert cells[("1T", 1024, 3)].fits_32gb
        assert not cells[("1T", 1024, 2)].fits_32gb
        rendered = table1.render(cells_list := table1.run())
        assert "Table 1" in rendered
        del cells_list


class TestTable2:
    def test_theory_matches_paper(self):
        from repro.experiments import table2

        rows = table2.run(measure=False)
        first = rows[0]
        assert first.theoretical_b["baseline"] == pytest.approx(2.0, abs=0.05)
        assert first.theoretical_b["Pos"] == pytest.approx(7.6, abs=0.1)
        assert first.theoretical_b["Pos+g+p"] == pytest.approx(128, rel=0.01)
        last = rows[-1]
        assert last.mp == 16
        assert last.theoretical_b["Pos+g+p"] == pytest.approx(2048, rel=0.01)

    def test_measured_tracks_paper_column(self):
        from repro.experiments.table2 import _measured_max_b

        # Paper row MP=1/64 GPUs: baseline 1.3B, Pos 6.2B measured.
        base = _measured_max_b(0, 1, 64)
        pos = _measured_max_b(1, 1, 64)
        assert 1.0 <= base <= 2.0
        assert 4.5 <= pos <= 7.5
        assert pos / base > 3  # the ZeRO-OS multiplier


class TestFig2:
    def test_shape(self):
        from repro.experiments import fig2

        rows = {r.label: r for r in fig2.run()}
        assert rows["100B"].speedup > 7
        assert rows["1.5B"].speedup < 2
        assert rows["100B"].zero_aggregate_pflops > 10
        # Baseline cannot even sustain 8 TFlops beyond 40B.
        for label in ("60B", "100B", "170B"):
            assert rows[label].baseline_tflops < 8


class TestFig3:
    def test_superlinear(self):
        from repro.experiments import fig3

        rows = fig3.run()
        assert rows[1].aggregate_pflops > 2 * rows[0].aggregate_pflops
        assert all(r.superlinear for r in rows[1:])
        # Our memory solver confirms the bigger batch fits at larger Nd.
        assert rows[-1].solver_max_batch >= rows[-1].batch


class TestFig4:
    def test_democratization(self):
        from repro.experiments import fig4

        rows = fig4.run()
        zero_rows = [r for r in rows if r.system == "zero"]
        assert all(r.fits_32gb for r in zero_rows)
        assert max(r.psi_b for r in zero_rows) > 12
        baseline_rows = [r for r in rows if r.system == "baseline"]
        assert all(r.psi_b < 1.5 for r in baseline_rows)


class TestFig5:
    def test_short_run_shapes(self):
        from repro.experiments import fig5

        curves = fig5.run(steps=10)
        ddp, zero_small, zero_large = curves
        assert ddp.val_perplexity == zero_small.val_perplexity  # ZeRO == DDP
        # Perplexity falls for every run over even a short training.
        for c in curves:
            assert c.val_perplexity[-1] < c.val_perplexity[0]
        assert "Figure 5" in fig5.render(curves)


class TestFig6:
    def test_config_ordering(self):
        from repro.experiments import fig6

        rows = {r.config: r.max_params_b for r in fig6.run()}
        # Paper's qualitative ordering: C1 < C2, C1 < C3 < C4 <= C5.
        assert rows["C1"] < rows["C2"]
        assert rows["C3"] < rows["C4"]
        assert rows["C4"] <= rows["C5"]
        assert rows["C4"] > 2 * rows["C1"]  # the 40B -> 140B style jump


class TestFig7:
    def test_cached_memory_shapes(self):
        from repro.experiments import fig7

        cells = {(c.model, c.config): c for c in fig7.run()}
        # Pa reduces cached memory (C1 -> C2).
        assert cells[("40B", "C2")].max_cached_gb < cells[("40B", "C1")].max_cached_gb
        # C4 -> C5 roughly flat for 40B...
        a, b = cells[("40B", "C4")], cells[("40B", "C5")]
        assert abs(a.max_cached_gb - b.max_cached_gb) < 1.0
        # ...but a real decrease for 100B (the paper's observation).
        c4, c5 = cells[("100B", "C4")], cells[("100B", "C5")]
        assert c4.fits and c5.fits
        assert c5.max_cached_gb < c4.max_cached_gb - 1.0


class TestFig8:
    def test_throughput_per_config(self):
        from repro.experiments import fig8

        rows = {(r.model, r.config): r for r in fig8.run()}
        # More memory headroom -> bigger batch -> more throughput (C1 -> C4).
        assert rows[("60B", "C4")].tflops_per_gpu > rows[("60B", "C1")].tflops_per_gpu
        # Pa+cpu not free: C5 <= C4 for 60B.
        assert rows[("60B", "C5")].tflops_per_gpu <= rows[("60B", "C4")].tflops_per_gpu
        # 170B runs only with the most aggressive configs.
        assert not rows[("170B", "C1")].runnable
        assert rows[("170B", "C5")].runnable


class TestSec7:
    def test_measured_volumes(self):
        from repro.experiments import sec7

        for row in sec7.run():
            assert row.measured_psi == pytest.approx(row.expected_psi, abs=1e-6)


class TestSec8:
    def test_pa_overhead_below_ten_percent(self):
        from repro.experiments import sec8

        results = {r.store: r for r in sec8.run()}
        assert results["none"].mp_volume_elems == results["none"].analytic_mp_elems
        pa = results["pa"]
        assert pa.activation_gather_elems == pa.analytic_pa_elems
        assert pa.pa_overhead_fraction < 0.10
        assert results["pa+cpu"].cpu_transfer_elems > 0


class TestRendering:
    @pytest.mark.parametrize(
        "module", ["fig2", "fig3", "fig4", "fig6", "fig8", "table1"]
    )
    def test_render_produces_table(self, module):
        import importlib

        mod = importlib.import_module(f"repro.experiments.{module}")
        text = mod.render(mod.run())
        assert len(text.splitlines()) > 3
