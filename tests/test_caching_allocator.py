"""Caching allocator: reserved/cached semantics, flush-and-retry, peaks."""

import pytest

from repro.memsim.block_allocator import BlockAllocator
from repro.memsim.caching_allocator import CachingAllocator
from repro.memsim.errors import InvalidFreeError, OutOfMemoryError

KB = 1024
MB = 1024 * KB


def make(capacity=16 * MB):
    return CachingAllocator(BlockAllocator(capacity, name="t"))


def test_free_keeps_bytes_reserved():
    c = make()
    e = c.alloc(1 * MB)
    assert c.allocated_bytes == 1 * MB
    assert c.reserved_bytes == 1 * MB
    c.free(e)
    assert c.allocated_bytes == 0
    assert c.reserved_bytes == 1 * MB  # cached, not returned
    assert c.cached_bytes == 1 * MB


def test_cache_hit_reuses_block():
    c = make()
    e = c.alloc(1 * MB)
    c.free(e)
    c.alloc(1 * MB)
    assert c.n_cache_hits == 1
    assert c.reserved_bytes == 1 * MB  # no new device memory


def test_empty_cache_releases_to_device():
    c = make()
    e = c.alloc(2 * MB)
    c.free(e)
    released = c.empty_cache()
    assert released == 2 * MB
    assert c.reserved_bytes == 0
    assert c.backing.allocated_bytes == 0


def test_oom_triggers_flush_and_retry():
    c = make(capacity=4 * MB)
    e = c.alloc(3 * MB)
    c.free(e)  # 3MB cached
    # 3.5MB fits no cached block and no fresh space -> flush cache, retry.
    c.alloc(3 * MB + 512 * KB)
    assert c.n_flushes == 1
    assert c.allocated_bytes == 3 * MB + 512 * KB


def test_hard_oom_still_raises():
    c = make(capacity=2 * MB)
    c.alloc(2 * MB)
    with pytest.raises(OutOfMemoryError):
        c.alloc(1 * MB)


def test_max_reserved_tracks_peak():
    c = make()
    e1 = c.alloc(4 * MB)
    c.free(e1)
    e2 = c.alloc(1 * MB)
    # Peak reserved was during the 4MB allocation.
    assert c.max_reserved == 4 * MB
    assert c.max_allocated == 4 * MB
    del e2


def test_reset_peak_stats():
    c = make()
    e = c.alloc(4 * MB)
    c.free(e)
    c.empty_cache()
    c.reset_peak_stats()
    assert c.max_reserved == 0
    c.alloc(1 * MB)
    assert c.max_reserved == 1 * MB


def test_large_cached_block_is_split_on_smaller_request():
    c = make()
    e = c.alloc(8 * MB)
    c.free(e)
    c.alloc(1 * MB)
    # The 8MB block must not be wasted whole on a 1MB request.
    assert c.allocated_bytes == 1 * MB
    assert c.reserved_bytes < 8 * MB + 1 * MB


def test_small_poor_fit_prefers_fresh_allocation():
    c = make()
    e = c.alloc(100 * KB)  # small block (< split threshold)
    c.free(e)
    c.alloc(10 * KB)  # would waste 90% of cached block
    assert c.allocated_bytes == 10 * KB
    assert c.cached_bytes >= 100 * KB  # original stays cached


def test_double_free_raises():
    c = make()
    e = c.alloc(1 * MB)
    c.free(e)
    with pytest.raises(InvalidFreeError):
        c.free(e)


def test_stats_snapshot():
    c = make()
    e = c.alloc(1 * MB)
    c.free(e)
    c.alloc(1 * MB)
    s = c.stats()
    assert s.allocated == 1 * MB
    assert s.n_cache_hits == 1
    assert s.n_cache_misses == 1


def test_interleaved_sizes_accounting_consistent():
    c = make()
    extents = [c.alloc((i % 5 + 1) * 100 * KB) for i in range(20)]
    for e in extents[::2]:
        c.free(e)
    assert c.reserved_bytes >= c.allocated_bytes
    assert c.backing.allocated_bytes == c.reserved_bytes
    for e in extents[1::2]:
        c.free(e)
    assert c.allocated_bytes == 0
