"""Deterministic seeding and table rendering."""

import numpy as np
import pytest

from repro.utils.seeding import derive_seed, rng_for
from repro.utils.tables import format_table


def test_rng_reproducible():
    a = rng_for(7, "x", 3).standard_normal(5)
    b = rng_for(7, "x", 3).standard_normal(5)
    np.testing.assert_array_equal(a, b)


def test_rng_streams_independent():
    a = rng_for(7, "data", 0).standard_normal(100)
    b = rng_for(7, "data", 1).standard_normal(100)
    c = rng_for(7, "dropout", 0).standard_normal(100)
    assert not np.allclose(a, b)
    assert not np.allclose(a, c)


def test_string_keys_stable_across_processes():
    # Python's hash() is randomized per process; ours must not be.
    seq = derive_seed(1, "gradient")
    assert seq.spawn_key == derive_seed(1, "gradient").spawn_key


def test_root_seed_changes_stream():
    a = rng_for(1, "k").standard_normal(10)
    b = rng_for(2, "k").standard_normal(10)
    assert not np.allclose(a, b)


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert len({len(line) for line in lines[1:]}) == 1  # uniform width


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError, match="columns"):
        format_table(["a", "b"], [[1]])
