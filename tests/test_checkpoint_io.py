"""Checkpoint save/load: bitwise resume for every engine, shard layout."""

import json

import numpy as np
import pytest

from repro import Cluster, GPTConfig, ZeROConfig
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.optim.adam import AdamHyperparams
from repro.parallel.engine import EngineConfig
from repro.zero.checkpoint_io import load_checkpoint, save_checkpoint
from repro.zero.factory import build_model_and_engine

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)
WORLD = 2


def build(ctx, stage, dtype=np.float32):
    zero = ZeROConfig(stage=stage, checkpoint_activations=False, memory_defrag=False)
    return build_model_and_engine(
        ctx, CFG, zero, dp_group=ctx.world, dtype=dtype, seed=3,
        engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
    )


def train(engine, ctx, start, steps):
    losses = []
    for step in range(start, start + steps):
        ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
        losses.append(engine.train_step(ids, tgt).loss)
    return losses


@pytest.mark.parametrize("stage", [0, 1, 2, 3])
def test_bitwise_resume(stage, tmp_path):
    """train(2) -> save -> train(2) must equal fresh-load -> train(2)."""
    ckpt = tmp_path / "ckpt"

    def straight(ctx):
        model, engine = build(ctx, stage)
        train(engine, ctx, 0, 2)
        save_checkpoint(engine, ckpt)
        losses = train(engine, ctx, 2, 2)
        return losses, engine.opt_state.master.data.copy()

    ref = Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(straight)

    def resumed(ctx):
        model, engine = build(ctx, stage)
        load_checkpoint(engine, ckpt)
        assert engine.step_count == 2
        losses = train(engine, ctx, 2, 2)
        return losses, engine.opt_state.master.data.copy()

    out = Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(resumed)
    for rank in range(WORLD):
        assert out[rank][0] == ref[rank][0]  # losses bitwise
        np.testing.assert_array_equal(out[rank][1], ref[rank][1])  # state bitwise


def test_shard_files_shrink_with_world_size(tmp_path):
    """Each rank writes ~1/Nd of the optimizer state (the ZeRO property)."""

    def fn(ctx):
        model, engine = build(ctx, stage=2)
        train(engine, ctx, 0, 1)
        return save_checkpoint(engine, tmp_path / "c").stat().st_size

    sizes = Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(fn)
    full_fp32 = CFG.total_params * 4
    # 3 fp32 vectors of numel/2 each ~= 6 bytes/param per rank.
    assert sizes[0] < full_fp32 * 2
    meta = json.loads((tmp_path / "c" / "meta.json").read_text())
    assert meta["world_size"] == WORLD and meta["engine"] == "zero2"


def test_scaler_state_roundtrips(tmp_path):
    def fn(ctx):
        model, engine = build(ctx, stage=1)
        engine.scaler.scale = 4096.0
        engine.scaler.good_steps = 7
        save_checkpoint(engine, tmp_path / "c")
        model2, engine2 = build(ctx, stage=1)
        load_checkpoint(engine2, tmp_path / "c")
        return engine2.scaler.scale, engine2.scaler.good_steps

    assert Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(fn) == [(4096.0, 7)] * WORLD


def test_mismatched_world_rejected(tmp_path):
    def writer(ctx):
        model, engine = build(ctx, stage=2)
        save_checkpoint(engine, tmp_path / "c")

    Cluster(2, gpu=GPU, timeout_s=60.0).run(writer)

    def reader(ctx):
        # Model padded for 1 rank has different flat layout too; the world
        # check fires first.
        model, engine = build(ctx, stage=2)
        with pytest.raises(ValueError, match="world"):
            load_checkpoint(engine, tmp_path / "c")
        return True

    assert Cluster(1, gpu=GPU, timeout_s=60.0).run(reader) == [True]


def test_mismatched_engine_rejected(tmp_path):
    def writer(ctx):
        model, engine = build(ctx, stage=2)
        save_checkpoint(engine, tmp_path / "c")

    Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(writer)

    def reader(ctx):
        model, engine = build(ctx, stage=1)
        with pytest.raises(ValueError, match="engine"):
            load_checkpoint(engine, tmp_path / "c")
        return True

    assert Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(reader) == [True] * WORLD


def test_meta_engine_rejected(tmp_path):
    def fn(ctx):
        zero = ZeROConfig(stage=2, checkpoint_activations=False, memory_defrag=False)
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, meta=True,
        )
        with pytest.raises(ValueError, match="meta"):
            save_checkpoint(engine, tmp_path / "c")
        return True

    assert Cluster(1, gpu=GPU).run(fn) == [True]


def test_fp16_resume(tmp_path):
    """Resume correctness holds for half-precision training too."""
    ckpt = tmp_path / "c16"

    def straight(ctx):
        model, engine = build(ctx, stage=2, dtype=np.float16)
        train(engine, ctx, 0, 2)
        save_checkpoint(engine, ckpt)
        return train(engine, ctx, 2, 2)

    ref = Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(straight)

    def resumed(ctx):
        model, engine = build(ctx, stage=2, dtype=np.float16)
        load_checkpoint(engine, ckpt)
        return train(engine, ctx, 2, 2)

    out = Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(resumed)
    assert out == ref


# -- durability: atomic writes, torn-checkpoint detection ---------------------


def test_save_leaves_no_temp_files(tmp_path):
    def fn(ctx):
        model, engine = build(ctx, stage=2)
        train(engine, ctx, 0, 1)
        save_checkpoint(engine, tmp_path / "c")

    Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(fn)
    leftovers = [p.name for p in (tmp_path / "c").iterdir() if p.suffix == ".tmp"]
    assert leftovers == []
    assert (tmp_path / "c" / "meta.json").exists()


def test_torn_checkpoint_step_mismatch_rejected(tmp_path):
    """A rank file from a different save than meta.json promises must be
    rejected (simulated torn checkpoint)."""

    def writer(ctx):
        model, engine = build(ctx, stage=2)
        train(engine, ctx, 0, 1)
        save_checkpoint(engine, tmp_path / "a")
        train(engine, ctx, 1, 1)
        save_checkpoint(engine, tmp_path / "b")

    Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(writer)
    # Tear checkpoint "b": replace one rank's shard with the older save's.
    (tmp_path / "b" / "rank1.npz").write_bytes(
        (tmp_path / "a" / "rank1.npz").read_bytes()
    )

    def reader(ctx):
        model, engine = build(ctx, stage=2)
        with pytest.raises(ValueError, match="torn"):
            load_checkpoint(engine, tmp_path / "b")
        return True

    assert Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(reader) == [True] * WORLD


def test_missing_rank_file_rejected(tmp_path):
    def writer(ctx):
        model, engine = build(ctx, stage=2)
        train(engine, ctx, 0, 1)
        save_checkpoint(engine, tmp_path / "c")

    Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(writer)
    (tmp_path / "c" / "rank1.npz").unlink()

    def reader(ctx):
        model, engine = build(ctx, stage=2)
        with pytest.raises(ValueError, match="torn"):
            load_checkpoint(engine, tmp_path / "c")
        return True

    assert Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(reader) == [True] * WORLD


def test_latest_checkpoint_skips_torn(tmp_path):
    from repro.zero.checkpoint_io import is_complete_checkpoint, latest_checkpoint

    root = tmp_path / "root"

    def fn(ctx):
        model, engine = build(ctx, stage=1)
        train(engine, ctx, 0, 1)
        save_checkpoint(engine, root / "step1")
        train(engine, ctx, 1, 1)
        save_checkpoint(engine, root / "step2")

    Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(fn)
    assert latest_checkpoint(root) == root / "step2"
    assert is_complete_checkpoint(root / "step2")
    # Tear the newest save: discovery must fall back to the older one.
    (root / "step2" / "rank0.npz").unlink()
    assert not is_complete_checkpoint(root / "step2")
    assert latest_checkpoint(root) == root / "step1"
    assert latest_checkpoint(tmp_path / "nonexistent") is None


# -- elastic re-sharding ------------------------------------------------------


@pytest.mark.parametrize("stage,new_world", [(1, 2), (2, 2), (3, 2), (2, 8), (3, 8)])
def test_resharded_resume_bitwise(stage, new_world, tmp_path):
    """A 4-rank checkpoint loaded into a smaller or larger world must resume
    exactly like an uninterrupted new-world run loaded from the same state:
    train at the new degree and compare trajectories bitwise against a
    second re-sharded load."""
    from repro.zero.checkpoint_io import load_checkpoint_resharded

    ckpt = tmp_path / "c"

    def writer(ctx):
        model, engine = build(ctx, stage)
        train(engine, ctx, 0, 2)
        save_checkpoint(engine, ckpt)
        return engine.opt_state.master.numpy().copy()

    old_masters = Cluster(4, gpu=GPU, timeout_s=60.0).run(writer)

    def resumed(ctx):
        model, engine = build(ctx, stage)
        load_checkpoint_resharded(engine, ckpt)
        assert engine.step_count == 2
        master = engine.opt_state.master.numpy().copy()
        losses = train(engine, ctx, 2, 2)
        return master, losses

    out = Cluster(new_world, gpu=GPU, timeout_s=60.0).run(resumed)

    # The re-sharded masters must be exactly the old flat state, re-sliced.
    full_old = np.concatenate(old_masters)
    unpadded = CFG.total_params
    for rank in range(new_world):
        got = out[rank][0]
        lo = rank * len(got)
        reference = np.zeros(len(got), np.float32)
        valid = max(0, min(unpadded - lo, len(got)))
        if valid:
            reference[:valid] = full_old[lo : lo + valid]
        np.testing.assert_array_equal(got, reference)
    # And training after the re-shard is deterministic (trajectories agree
    # across a second independent load).
    out2 = Cluster(new_world, gpu=GPU, timeout_s=60.0).run(resumed)
    assert [o[1] for o in out2] == [o[1] for o in out]


def test_resharded_same_world_is_plain_load(tmp_path):
    from repro.zero.checkpoint_io import load_checkpoint_resharded

    ckpt = tmp_path / "c"

    def straight(ctx):
        model, engine = build(ctx, stage=2)
        train(engine, ctx, 0, 2)
        save_checkpoint(engine, ckpt)
        losses = train(engine, ctx, 2, 2)
        return losses

    ref = Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(straight)

    def resumed(ctx):
        model, engine = build(ctx, stage=2)
        load_checkpoint_resharded(engine, ckpt)
        return train(engine, ctx, 2, 2)

    assert Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(resumed) == ref
