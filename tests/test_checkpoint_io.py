"""Checkpoint save/load: bitwise resume for every engine, shard layout."""

import json

import numpy as np
import pytest

from repro import Cluster, GPTConfig, ZeROConfig
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.optim.adam import AdamHyperparams
from repro.parallel.engine import EngineConfig
from repro.zero.checkpoint_io import load_checkpoint, save_checkpoint
from repro.zero.factory import build_model_and_engine

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)
WORLD = 2


def build(ctx, stage, dtype=np.float32):
    zero = ZeROConfig(stage=stage, checkpoint_activations=False, memory_defrag=False)
    return build_model_and_engine(
        ctx, CFG, zero, dp_group=ctx.world, dtype=dtype, seed=3,
        engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
    )


def train(engine, ctx, start, steps):
    losses = []
    for step in range(start, start + steps):
        ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
        losses.append(engine.train_step(ids, tgt).loss)
    return losses


@pytest.mark.parametrize("stage", [0, 1, 2, 3])
def test_bitwise_resume(stage, tmp_path):
    """train(2) -> save -> train(2) must equal fresh-load -> train(2)."""
    ckpt = tmp_path / "ckpt"

    def straight(ctx):
        model, engine = build(ctx, stage)
        train(engine, ctx, 0, 2)
        save_checkpoint(engine, ckpt)
        losses = train(engine, ctx, 2, 2)
        return losses, engine.opt_state.master.data.copy()

    ref = Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(straight)

    def resumed(ctx):
        model, engine = build(ctx, stage)
        load_checkpoint(engine, ckpt)
        assert engine.step_count == 2
        losses = train(engine, ctx, 2, 2)
        return losses, engine.opt_state.master.data.copy()

    out = Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(resumed)
    for rank in range(WORLD):
        assert out[rank][0] == ref[rank][0]  # losses bitwise
        np.testing.assert_array_equal(out[rank][1], ref[rank][1])  # state bitwise


def test_shard_files_shrink_with_world_size(tmp_path):
    """Each rank writes ~1/Nd of the optimizer state (the ZeRO property)."""

    def fn(ctx):
        model, engine = build(ctx, stage=2)
        train(engine, ctx, 0, 1)
        return save_checkpoint(engine, tmp_path / "c").stat().st_size

    sizes = Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(fn)
    full_fp32 = CFG.total_params * 4
    # 3 fp32 vectors of numel/2 each ~= 6 bytes/param per rank.
    assert sizes[0] < full_fp32 * 2
    meta = json.loads((tmp_path / "c" / "meta.json").read_text())
    assert meta["world_size"] == WORLD and meta["engine"] == "zero2"


def test_scaler_state_roundtrips(tmp_path):
    def fn(ctx):
        model, engine = build(ctx, stage=1)
        engine.scaler.scale = 4096.0
        engine.scaler.good_steps = 7
        save_checkpoint(engine, tmp_path / "c")
        model2, engine2 = build(ctx, stage=1)
        load_checkpoint(engine2, tmp_path / "c")
        return engine2.scaler.scale, engine2.scaler.good_steps

    assert Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(fn) == [(4096.0, 7)] * WORLD


def test_mismatched_world_rejected(tmp_path):
    def writer(ctx):
        model, engine = build(ctx, stage=2)
        save_checkpoint(engine, tmp_path / "c")

    Cluster(2, gpu=GPU, timeout_s=60.0).run(writer)

    def reader(ctx):
        # Model padded for 1 rank has different flat layout too; the world
        # check fires first.
        model, engine = build(ctx, stage=2)
        with pytest.raises(ValueError, match="world"):
            load_checkpoint(engine, tmp_path / "c")
        return True

    assert Cluster(1, gpu=GPU, timeout_s=60.0).run(reader) == [True]


def test_mismatched_engine_rejected(tmp_path):
    def writer(ctx):
        model, engine = build(ctx, stage=2)
        save_checkpoint(engine, tmp_path / "c")

    Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(writer)

    def reader(ctx):
        model, engine = build(ctx, stage=1)
        with pytest.raises(ValueError, match="engine"):
            load_checkpoint(engine, tmp_path / "c")
        return True

    assert Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(reader) == [True] * WORLD


def test_meta_engine_rejected(tmp_path):
    def fn(ctx):
        zero = ZeROConfig(stage=2, checkpoint_activations=False, memory_defrag=False)
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, meta=True,
        )
        with pytest.raises(ValueError, match="meta"):
            save_checkpoint(engine, tmp_path / "c")
        return True

    assert Cluster(1, gpu=GPU).run(fn) == [True]


def test_fp16_resume(tmp_path):
    """Resume correctness holds for half-precision training too."""
    ckpt = tmp_path / "c16"

    def straight(ctx):
        model, engine = build(ctx, stage=2, dtype=np.float16)
        train(engine, ctx, 0, 2)
        save_checkpoint(engine, ckpt)
        return train(engine, ctx, 2, 2)

    ref = Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(straight)

    def resumed(ctx):
        model, engine = build(ctx, stage=2, dtype=np.float16)
        load_checkpoint(engine, ckpt)
        return train(engine, ctx, 2, 2)

    out = Cluster(WORLD, gpu=GPU, timeout_s=60.0).run(resumed)
    assert out == ref
