"""Thread-SPMD fabric and cluster launcher: rendezvous, aborts, p2p."""

import numpy as np
import pytest

from repro.comm.fabric import CollectiveMismatchError, Fabric, FabricAbortedError
from repro.hardware.specs import GPUSpec
from repro.runtime import Cluster

GPU = GPUSpec("t", 10**8, 1e12)


def make_cluster(n=4, timeout_s=5.0):
    return Cluster(n, gpu=GPU, timeout_s=timeout_s)


def test_run_returns_per_rank_results():
    cluster = make_cluster(4)
    results = cluster.run(lambda ctx: ctx.rank * 10)
    assert results == [0, 10, 20, 30]


def test_rank_contexts_are_distinct():
    cluster = make_cluster(3)
    ids = cluster.run(lambda ctx: id(ctx.device))
    assert len(set(ids)) == 3


def test_exception_propagates_and_releases_peers():
    cluster = make_cluster(4, timeout_s=3.0)

    def fn(ctx):
        if ctx.rank == 2:
            raise RuntimeError("boom on rank 2")
        # Peers block in a collective; the abort must release them.
        ctx.world.all_reduce(ctx.rank, np.ones(4, np.float32))

    with pytest.raises(RuntimeError, match="boom on rank 2"):
        cluster.run(fn)


def test_collective_order_mismatch_detected():
    cluster = make_cluster(2, timeout_s=5.0)

    def fn(ctx):
        if ctx.rank == 0:
            ctx.world.all_reduce(ctx.rank, np.ones(4, np.float32))
        else:
            ctx.world.broadcast(ctx.rank, np.ones(4, np.float32), src=1)

    with pytest.raises((CollectiveMismatchError, FabricAbortedError)):
        cluster.run(fn)


def test_barrier_synchronizes_all_ranks():
    cluster = make_cluster(4)

    def fn(ctx):
        ctx.barrier()
        return True

    assert cluster.run(fn) == [True] * 4


def test_point_to_point_send_recv():
    cluster = make_cluster(2)

    def fn(ctx):
        if ctx.rank == 0:
            ctx.world.send(0, dst=1, array=np.arange(5, dtype=np.float32), tag=7)
            return None
        return ctx.world.recv(1, src=0, tag=7)

    results = cluster.run(fn)
    np.testing.assert_array_equal(results[1], np.arange(5, dtype=np.float32))


def test_p2p_messages_ordered_per_tag():
    cluster = make_cluster(2)

    def fn(ctx):
        if ctx.rank == 0:
            for i in range(3):
                ctx.world.send(0, dst=1, array=np.array([i], np.int64), tag=0)
            return None
        return [int(ctx.world.recv(1, src=0, tag=0)[0]) for _ in range(3)]

    assert cluster.run(fn)[1] == [0, 1, 2]


def test_collective_tag_mismatch_raises_not_hangs():
    """Two ranks issuing collectives with different tags (same op, different
    shapes) must raise within the timeout, not deadlock."""
    cluster = make_cluster(2, timeout_s=5.0)

    def fn(ctx):
        if ctx.rank == 0:
            ctx.world.all_reduce(ctx.rank, np.ones(4, np.float32))
        else:
            ctx.world.all_reduce(ctx.rank, np.ones(8, np.float32))

    with pytest.raises((CollectiveMismatchError, FabricAbortedError)):
        cluster.run(fn)


@pytest.mark.faults
def test_wrong_group_shape_raises_not_hangs():
    """A rank issuing a collective on the wrong group (subgroup vs world)
    leaves the world rendezvous short-handed; the timeout must abort every
    rank instead of hanging."""
    cluster = make_cluster(4, timeout_s=1.0)

    def fn(ctx):
        if ctx.rank in (0, 1):
            group = ctx.group([0, 1])
            return group.all_reduce(ctx.rank, np.ones(2, np.float32))[0]
        # Ranks 2-3 wrongly expect the whole world to participate.
        return ctx.world.all_reduce(ctx.rank, np.ones(2, np.float32))[0]

    with pytest.raises(FabricAbortedError):
        cluster.run(fn)


def test_recv_timeout_raises():
    fabric = Fabric(2, timeout_s=0.1)
    with pytest.raises(FabricAbortedError, match="timed out"):
        fabric.recv(src=0, dst=1, tag=0)


def test_recv_timeout_aborts_whole_fabric():
    """A recv timeout means the sender is gone: the fabric must be aborted
    so peers blocked in rendezvous fail fast instead of waiting out their
    own timeout."""
    fabric = Fabric(2, timeout_s=0.1)
    with pytest.raises(FabricAbortedError):
        fabric.recv(src=0, dst=1, tag=0)
    rv = fabric.rendezvous_for((0, 1))
    with pytest.raises(FabricAbortedError):  # aborted: raises without waiting
        rv.exchange(0, None, "barrier")


@pytest.mark.faults
def test_recv_timeout_releases_peer_in_collective():
    """In-cluster version: rank 1's recv times out (no sender), and rank 0 —
    blocked in an all_reduce — is released by the abort rather than by its
    own timeout."""
    cluster = make_cluster(2, timeout_s=1.0)

    def fn(ctx):
        if ctx.rank == 0:
            ctx.world.all_reduce(ctx.rank, np.ones(2, np.float32))
        else:
            ctx.world.recv(1, src=0, tag=9)  # nothing was ever sent

    with pytest.raises(FabricAbortedError):
        cluster.run(fn)


def test_subgroups_share_state_across_ranks():
    cluster = make_cluster(4)

    def fn(ctx):
        group = ctx.group([0, 2] if ctx.rank in (0, 2) else [1, 3])
        return group.all_reduce(ctx.rank, np.array([ctx.rank], np.float32))[0]

    results = cluster.run(fn)
    assert results == [2.0, 4.0, 2.0, 4.0]  # 0+2 and 1+3


def test_world_size_validation():
    with pytest.raises(ValueError):
        Fabric(0)
