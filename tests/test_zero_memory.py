"""ZeRO memory semantics: partition sizes, gradient release, stage-3
materialization, measured model-state bytes vs the Section 5 formulas."""

import numpy as np
import pytest

from repro import Cluster, GPTConfig, ZeROConfig
from repro.analysis.memory_model import model_state_bytes
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.optim.adam import AdamHyperparams
from repro.parallel.engine import EngineConfig
from repro.zero.factory import build_model_and_engine

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)
WORLD = 4


def run_stage(stage, probe):
    """Run one step on WORLD ranks; ``probe(ctx, engine)`` runs at
    optimizer-step entry (grads live); returns per-rank probe results."""
    cluster = Cluster(WORLD, gpu=GPU, timeout_s=60.0)

    def fn(ctx):
        zero = ZeROConfig(stage=stage, checkpoint_activations=True, memory_defrag=False)
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, dtype=np.float16, seed=0,
            engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3), bucket_numel=1000),
        )
        out = {}
        original = engine._optimizer_step

        def wrapped():
            out["probe"] = probe(ctx, engine)
            return original()

        engine._optimizer_step = wrapped
        ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=0)
        engine.train_step(ids, tgt)
        return out["probe"]

    return cluster.run(fn)


@pytest.mark.parametrize("stage", [0, 1, 2, 3])
def test_model_state_bytes_match_formula(stage):
    """Measured device bytes at optimizer entry ~= the Figure 1 formula
    (within per-allocation alignment overhead)."""

    def probe(ctx, engine):
        buffers = engine._cb_buffer.nbytes if engine._cb_buffer is not None else 0
        return (ctx.device.allocated_bytes - buffers, engine.layout.numel)

    results = run_stage(stage, probe)
    for measured, numel in results:
        expected = model_state_bytes(numel, WORLD, stage)
        # Alignment adds up to 512 bytes/allocation; tiny models feel it.
        slack = 0.25 * expected + 512 * 80
        assert abs(measured - expected) <= slack, (measured, expected)


def test_stage2_frees_full_gradients_during_backward():
    def probe(ctx, engine):
        live_grads = sum(
            p.grad.size for p in engine.layout.parameters if p.grad is not None
        )
        return live_grads, engine.layout.numel

    for live, numel in run_stage(2, probe):
        # Buckets are flushed before the optimizer runs; nothing remains.
        assert live == 0, (live, numel)


def test_stage1_keeps_full_gradients():
    def probe(ctx, engine):
        return sum(p.grad.size for p in engine.layout.parameters if p.grad is not None)

    sizes = run_stage(1, probe)
    full = CFG.total_params
    for live in sizes:
        assert live == full


def test_stage3_params_dematerialized_outside_compute():
    def probe(ctx, engine):
        materialized = [
            p.name for p in engine.layout.parameters if not p.data.freed
        ]
        return materialized

    for names in run_stage(3, probe):
        assert names == []  # all units dematerialized at optimizer time


def test_stage3_shard_sizes():
    def probe(ctx, engine):
        return engine.param_shard.size, engine.grad_shard.size, engine.opt_state.numel

    for p, g, o in run_stage(3, probe):
        total = -(-CFG.total_params // WORLD) * WORLD
        assert p == g == o == total // WORLD


@pytest.mark.parametrize("stage", [1, 2, 3])
def test_partitioned_optimizer_state_is_one_over_nd(stage):
    def probe(ctx, engine):
        return engine.opt_state.numel, engine.layout.numel

    for part, numel in run_stage(stage, probe):
        assert part == numel // WORLD


def test_ddp_optimizer_state_is_full():
    def probe(ctx, engine):
        return engine.opt_state.numel, engine.layout.numel

    for part, numel in run_stage(0, probe):
        assert part == numel


def test_memory_freed_after_engine_free():
    cluster = Cluster(2, gpu=GPU, timeout_s=60.0)

    def fn(ctx):
        zero = ZeROConfig(stage=2, checkpoint_activations=True, memory_defrag=False)
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, dtype=np.float16, seed=0,
        )
        ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=0)
        engine.train_step(ids, tgt)
        engine.free()
        model.free_parameters()
        return ctx.device.allocated_bytes

    for leftover in cluster.run(fn):
        assert leftover == 0
