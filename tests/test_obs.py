"""Mission Control: run ledger, incident analytics, goodput, exporters.

Acceptance properties (ISSUE 10):

* A seeded chaos campaign run with the recorder enabled produces an
  incident list *exactly* matching the injected FaultPlan ground truth —
  count, kinds, injected ranks, ordering — across >= 2 restarts, with
  MTTD/MTTR/lost-steps per incident.
* The goodput partition's four categories sum exactly (float equality,
  not tolerance) to the total run wall.
* The same run exports a Prometheus text dump, a Markdown run report,
  and one stitched cross-restart Chrome trace passing
  ``validate_chrome_trace``.
* Replaying the durable ledger file is deterministic: same events, and
  byte-identical derived reports.
* The recorder-off path is byte-identical to not having the feature.
* Every RestartKind round-trips through MetricsRegistry labels.
"""

import json

import numpy as np
import pytest

from repro import (
    Cluster,
    GPTConfig,
    RedundancyConfig,
    RestartKind,
    RestartPolicy,
    RetryPolicy,
    RunLedger,
    SLOPolicy,
    Supervisor,
    ZeROConfig,
    compute_goodput,
    reconstruct_incidents,
    resume_from_buddies,
    run_report,
)
from repro.chaos import generate_campaign
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.obs import (
    EventKind,
    RunEvent,
    absorbed_injections,
    prometheus_text,
    publish_goodput,
    stitched_chrome_trace,
)
from repro.optim.adam import AdamHyperparams
from repro.parallel.engine import EngineConfig
from repro.restart import (
    ALL_KINDS,
    counter_name,
    instant_name,
    kind_from_counter,
    kind_from_instant,
)
from repro.telemetry import (
    MetricsRegistry,
    TelemetrySession,
    validate_chrome_trace,
    validate_metrics_jsonl,
)
from repro.zero.checkpoint_io import (
    latest_checkpoint,
    load_checkpoint_resharded,
    save_checkpoint,
)
from repro.zero.factory import build_model_and_engine

pytestmark = pytest.mark.obs

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)
WORLD = 4
TOTAL_STEPS = 8
CKPT_EVERY = 2

# Seed 0 draws one kill + one scribble + checkpoint rot + a transient +
# a perf rule: >= 2 restarts with every fault family represented.
E2E_SEED = next(
    s for s in range(100)
    if generate_campaign(s, world=WORLD, total_steps=TOTAL_STEPS)
    .expected_restarts >= 2
)


# -- unit: events and ledger --------------------------------------------------


class TestRunEvent:
    def test_json_roundtrip(self):
        ev = RunEvent(
            seq=3, kind=EventKind.RESTART, t_s=1.25, incarnation=1,
            rank=2, step=5, args={"kind": "fast-recovery", "removed": [2]},
        )
        assert RunEvent.from_json(ev.to_json()) == ev

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown run-event kind"):
            RunEvent(seq=0, kind="nope", t_s=0.0, incarnation=0)

    def test_wrong_schema_rejected(self):
        line = json.dumps({"schema": "runledger-v0", "seq": 0,
                           "kind": "restart", "t_s": 0, "incarnation": 0})
        with pytest.raises(ValueError, match="schema"):
            RunEvent.from_json(line)


class TestRunLedger:
    def test_append_and_replay_continues_stream(self, tmp_path):
        """A new ledger over an existing file continues seq / clock /
        incarnation where the previous process stopped — the durability
        contract a restarted supervisor relies on."""
        path = tmp_path / "run.jsonl"
        first = RunLedger(path)
        first.record(EventKind.RUN_STARTED, world_size=4)
        first.begin_incarnation(4)
        first.on_step_completed(0, 1, t_s=0.5)
        first.close()

        second = RunLedger(path)
        assert len(second) == 3
        assert second.clock_s == 0.5
        assert second.incarnation == 0
        second.on_step_completed(1, 1, t_s=0.6)
        second.close()

        replayed = RunLedger.replay(path)
        assert [ev.to_json() for ev in replayed.events] == [
            ev.to_json() for ev in second.events
        ]
        assert [ev.seq for ev in replayed.events] == [0, 1, 2, 3]

    def test_clock_is_monotonic(self):
        led = RunLedger()
        led.begin_incarnation(2)
        led.on_step_completed(0, 1, t_s=1.0)
        led.on_step_completed(1, 1, t_s=0.25)  # straggler clock behind
        assert [ev.t_s for ev in led.events] == [0.0, 1.0, 1.0]

    def test_record_is_self_profiled(self):
        led = RunLedger()
        led.record(EventKind.RUN_STARTED)
        assert led.record_count == 1
        assert led.record_cpu_s >= 0.0


# -- unit: validate_metrics_jsonl ---------------------------------------------


class TestValidateMetricsJsonl:
    def _jsonl(self, **overrides):
        row = {"schema": "metrics-v1", "name": "c", "kind": "counter",
               "labels": {"rank": "0"}, "value": 1.0}
        row.update(overrides)
        return json.dumps(row)

    def test_registry_export_passes(self):
        reg = MetricsRegistry()
        reg.counter("steps", rank=0).add(3)
        reg.gauge("peak", rank=1).set(2.0)
        reg.histogram("step_time_s", rank=0).observe(0.1)
        validate_metrics_jsonl(reg.to_jsonl())

    def test_bad_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            validate_metrics_jsonl(self._jsonl(schema="metrics-v0"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown metric kind"):
            validate_metrics_jsonl(self._jsonl(kind="timer"))

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="lacks numeric"):
            validate_metrics_jsonl(self._jsonl(kind="histogram"))

    def test_duplicate_instance_rejected(self):
        text = self._jsonl() + "\n" + self._jsonl(value=2.0)
        with pytest.raises(ValueError, match="duplicate"):
            validate_metrics_jsonl(text)

    def test_non_string_labels_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            validate_metrics_jsonl(self._jsonl(labels={"rank": 0}))


# -- unit: restart kinds round-trip the registry (satellite 1) ----------------


class TestRestartKindRoundTrip:
    def test_every_kind_round_trips_through_registry_labels(self):
        reg = MetricsRegistry()
        for kind in sorted(ALL_KINDS):
            reg.counter(counter_name(kind)).add(1)
            reg.counter("supervisor_restarts", kind=kind).add(1)
        labelled = {
            labels["kind"]
            for labels, _ in reg.instances("supervisor_restarts")
        }
        assert labelled == ALL_KINDS
        for kind in ALL_KINDS:
            assert reg.counter(counter_name(kind)).value == 1
            assert kind_from_counter(counter_name(kind)) == kind
            assert kind_from_instant(instant_name(kind)) == kind

    def test_inverses_reject_foreign_names(self):
        with pytest.raises(ValueError):
            kind_from_counter("sdc_injections")
        with pytest.raises(ValueError):
            kind_from_instant("supervisor-gave-up")


# -- unit: goodput ------------------------------------------------------------


class TestGoodput:
    def test_empty_ledger_is_all_goodput(self):
        led = RunLedger()
        rep = compute_goodput(led, [])
        assert rep.total_s == 0.0
        assert rep.goodput_pct == 100.0

    def test_partition_sums_exactly(self):
        led = RunLedger()
        led.record(EventKind.RUN_STARTED, world_size=2)
        led.begin_incarnation(2)
        for s in (1, 2, 3):
            led.on_step_completed(0, s, t_s=0.1 * s)
        led.record(EventKind.FAULT_DETECTED, t_s=0.35, error="E")
        led.record(EventKind.RESTART, t_s=0.35, kind="failure", attempt=1,
                   world_before=2, world_after=2, removed=[])
        led.begin_incarnation(2)
        for s in (3, 4):  # step 3 re-executed after rollback to step 2
            led.on_step_completed(0, s, t_s=0.35 + 0.1 * (s - 2))
        led.record(EventKind.RUN_FINISHED, t_s=0.7)
        rep = compute_goodput(led, reconstruct_incidents(led))
        parts = (rep.productive_s, rep.reexecution_s, rep.recovery_s, rep.idle_s)
        assert sum(parts) == rep.total_s  # exact, by construction
        assert rep.reexecution_s > 0.0    # step 3 was re-run
        assert rep.recovery_s > 0.0
        assert rep.steps_reexecuted == 1


# -- the supervised chaos harness --------------------------------------------


def build(ctx):
    zero = ZeROConfig(stage=2, checkpoint_activations=False,
                      memory_defrag=False, audit_cadence=1)
    return build_model_and_engine(
        ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
        engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
    )


def make_train_fn(root):
    def train_fn(ctx):
        model, engine = build(ctx)
        if not resume_from_buddies(engine):
            latest = latest_checkpoint(root)
            if latest is not None:
                load_checkpoint_resharded(engine, latest)
        losses = []
        for step in range(engine.step_count, TOTAL_STEPS):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            losses.append(engine.train_step(ids, tgt).loss)
            if engine.step_count % CKPT_EVERY == 0:
                save_checkpoint(engine, root / f"step{engine.step_count}")
            ctx.barrier()
        return losses, engine.opt_state.master.data.copy()

    return train_fn


def run_campaign(tmp_path, *, recorder=None, telemetry=None):
    campaign = generate_campaign(E2E_SEED, world=WORLD, total_steps=TOTAL_STEPS)
    sup = Supervisor(
        campaign.world, gpu=GPU, fault_plan=campaign.build_plan(),
        timeout_s=15.0,
        retry_policy=RetryPolicy(max_attempts=3, base_backoff_s=0.001),
        policy=RestartPolicy(max_restarts=8, quarantine_after=99),
        redundancy=RedundancyConfig(),
        telemetry=telemetry,
        recorder=recorder,
    )
    report = sup.run(make_train_fn(tmp_path / "ckpts"))
    return campaign, sup, report


def injection_ground_truth(campaign):
    """The seeded plan's forced incidents, in firing (step) order."""
    forced = (
        [("kill", rank, step) for rank, step in campaign.kills]
        + [("scribble", rank, step) for rank, step, _ in campaign.scribbles]
    )
    return sorted(forced, key=lambda t: t[2])


# -- e2e: the acceptance scenario ---------------------------------------------


@pytest.mark.faults
@pytest.mark.chaos
class TestMissionControlE2E:
    @pytest.fixture(scope="class")
    def e2e(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("mission-control")
        session = TelemetrySession()
        ledger_path = tmp_path / "run-ledger.jsonl"
        campaign, sup, report = run_campaign(
            tmp_path, recorder=ledger_path, telemetry=session,
        )
        return campaign, sup, report, session, ledger_path

    def test_incidents_match_fault_plan_ground_truth(self, e2e):
        campaign, sup, report, session, _ = e2e
        truth = injection_ground_truth(campaign)
        assert len(truth) >= 2 and report.restarts == len(truth)

        incidents = reconstruct_incidents(sup.recorder)
        assert [(i.kind, i.injected_rank) for i in incidents] == [
            (kind, rank) for kind, rank, _ in truth
        ]
        for inc, (kind, rank, step) in zip(incidents, truth):
            # Every campaign fault is buddy-servable: fast recovery, at
            # the boundary before the fault step, with zero lost steps.
            assert inc.restart_kind == RestartKind.FAST_RECOVERY
            assert inc.frontier_step == step - 1
            assert inc.resume_step == step
            assert inc.lost_steps == 0
            assert inc.mttd_s is not None and inc.mttd_s >= 0.0
            assert inc.mttr_s is not None and inc.mttr_s >= 0.0
        # Transients / rot / perf onsets were absorbed, never incidents.
        absorbed = absorbed_injections(sup.recorder, incidents)
        assert all(
            ev.args["fault"] not in ("kill", "scribble") for ev in absorbed
        )

    def test_goodput_partition_sums_exactly_to_run_wall(self, e2e):
        campaign, sup, report, session, _ = e2e
        incidents = reconstruct_incidents(sup.recorder)
        rep = compute_goodput(sup.recorder, incidents)
        assert rep.total_s > 0.0
        assert (
            rep.productive_s + rep.reexecution_s + rep.recovery_s + rep.idle_s
            == rep.total_s
        )
        assert 0.0 < rep.goodput_pct < 100.0
        assert rep.lost_steps_total == 0
        assert rep.n_incidents == report.restarts
        # Gauges land in the session registry and the exports validate.
        publish_goodput(rep, session.registry)
        assert session.registry.gauge("run_goodput_pct").value == rep.goodput_pct
        validate_metrics_jsonl(session.registry.to_jsonl())
        prom = prometheus_text(session.registry)
        assert "# TYPE run_goodput_pct gauge" in prom
        assert "supervisor_fast_recoverys" in prom

    def test_slo_monitors_trip_structured_violations(self, e2e):
        campaign, sup, report, session, _ = e2e
        incidents = reconstruct_incidents(sup.recorder)
        rep = compute_goodput(sup.recorder, incidents)
        assert SLOPolicy().check(rep, incidents) == []
        tight = SLOPolicy(min_goodput_pct=101.0, max_incidents=0,
                          max_mttr_s=0.0)
        violations = tight.check(rep, incidents, registry=session.registry)
        names = {v.name for v in violations}
        assert "min_goodput_pct" in names and "max_incidents" in names
        for v in violations:
            assert session.registry.counter("slo_violations", slo=v.name).value >= 1

    def test_ledger_replay_is_deterministic(self, e2e):
        campaign, sup, report, session, ledger_path = e2e
        replayed = RunLedger.replay(ledger_path)
        assert [ev.to_json() for ev in replayed.events] == [
            ev.to_json() for ev in sup.recorder.events
        ]
        assert run_report(replayed) == run_report(sup.recorder)

    def test_run_report_tells_the_story(self, e2e):
        campaign, sup, report, session, _ = e2e
        text = run_report(sup.recorder)
        assert "## Incidents" in text and "## Goodput" in text
        assert "fast-recovery" in text
        assert f"| incidents | {report.restarts} |" in text
        assert "run finished" in text

    def test_stitched_trace_passes_validation(self, e2e, tmp_path):
        campaign, sup, report, session, _ = e2e
        trace = stitched_chrome_trace(sup.recorder, session)
        validate_chrome_trace(trace)
        # One lane set per incarnation, plus the supervisor/ledger lanes.
        lanes = {
            ev["args"]["name"]
            for ev in trace["traceEvents"]
            if ev.get("ph") == "M" and ev["name"] == "thread_name"
        }
        for inc in range(report.restarts + 1):
            assert f"inc{inc}:step" in lanes
        assert "run-ledger" in lanes
        path = tmp_path / "stitched.json"
        path.write_text(json.dumps(trace))
        validate_chrome_trace(path.read_text())

    def test_replayed_ledger_refuses_to_stitch(self, e2e):
        campaign, sup, report, session, ledger_path = e2e
        replayed = RunLedger.replay(ledger_path)
        with pytest.raises(ValueError, match="incarnation marks"):
            stitched_chrome_trace(replayed, session)


# -- zero-overhead contract ---------------------------------------------------


@pytest.mark.faults
@pytest.mark.chaos
def test_recorder_off_and_on_are_bitwise_identical(tmp_path):
    """The recorder must be observational only: the same campaign with
    recording on converges to bitwise the same losses and master state,
    and with recording off nothing is allocated anywhere."""
    _, sup_off, off = run_campaign(tmp_path / "off")
    assert sup_off.recorder is None
    _, sup_on, on = run_campaign(
        tmp_path / "on", recorder=tmp_path / "on" / "run.jsonl",
    )
    assert len(sup_on.recorder) > 0
    assert off.restarts == on.restarts
    assert off.final_world_size == on.final_world_size
    for rank in range(off.final_world_size):
        assert off.results[rank][0] == on.results[rank][0]
        np.testing.assert_array_equal(off.results[rank][1], on.results[rank][1])


def test_plain_cluster_context_has_no_recorder():
    def fn(ctx):
        return ctx.recorder

    assert Cluster(2, gpu=GPU).run(fn) == [None, None]
