"""Configuration advisor: the Section 8 / 10.5 decision procedure."""

import pytest

from repro.analysis.advisor import advise_activation_strategy, recommend_zero_config
from repro.nn.transformer import GPTConfig

MODEL_60B = GPTConfig(n_layers=75, hidden=8192, n_heads=64)
MODEL_170B = GPTConfig(n_layers=212, hidden=8192, n_heads=64)
MODEL_1B = GPTConfig(n_layers=20, hidden=2048, n_heads=16)
MODEL_13B = GPTConfig(n_layers=62, hidden=4096, n_heads=32)


class TestActivationAdvice:
    def test_pa_recommended_for_60b(self):
        """60B @ MP=16: Pa's bigger batch wins (Figure 8's C2/C4 > C1/C3)."""
        advice = advise_activation_strategy(MODEL_60B, n_gpus=128, mp=16, stage=2)
        assert advice.config.partition_activations
        assert not advice.config.cpu_offload_activations
        assert advice.batch > 0

    def test_pa_cpu_required_for_170b(self):
        """170B only trains with checkpoint offload (paper Section 10.5:
        'Pa+cpu is needed for 170B model to execute' at a usable batch)."""
        advice = advise_activation_strategy(MODEL_170B, n_gpus=400, mp=16, stage=2)
        assert advice.config.cpu_offload_activations
        by_label = {v.label: v for v in advice.variants}
        assert not by_label["no-Pa"].feasible

    def test_dp_only_has_no_pa_option(self):
        advice = advise_activation_strategy(MODEL_1B, n_gpus=64, mp=1, stage=2)
        assert [v.label for v in advice.variants] == ["no-Pa"]
        assert not advice.config.partition_activations

    def test_infeasible_reported_not_raised(self):
        advice = advise_activation_strategy(MODEL_170B, n_gpus=32, mp=1, stage=1)
        assert advice.batch == 0
        assert "does not fit" in advice.reason

    def test_divisibility_validated(self):
        with pytest.raises(ValueError):
            advise_activation_strategy(MODEL_1B, n_gpus=65, mp=16)


class TestStageRecommendation:
    def test_small_model_gets_baseline(self):
        advice = recommend_zero_config(MODEL_1B, n_gpus=64)
        assert advice.config.stage == 0  # fits without any partitioning

    def test_13b_dp_only_needs_partitioning(self):
        """The Figure 4 scenario: 13B without MP needs ZeRO (not baseline)."""
        advice = recommend_zero_config(MODEL_13B, n_gpus=128)
        assert 1 <= advice.config.stage <= 2
        assert advice.batch >= 1

    def test_stage_escalates_with_model_size(self):
        stages = {}
        for label, model in (("1B", MODEL_1B), ("13B", MODEL_13B), ("60B", MODEL_60B)):
            stages[label] = recommend_zero_config(model, n_gpus=128, mp=16).config.stage
        assert stages["1B"] <= stages["13B"] <= stages["60B"]

    def test_monster_model_gets_stage3(self):
        huge = GPTConfig(n_layers=500, hidden=8192, n_heads=64)  # ~400B
        advice = recommend_zero_config(huge, n_gpus=1024, mp=16)
        assert advice.config.stage == 3
        assert advice.batch >= 1
