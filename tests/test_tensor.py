"""Tensor: real/meta storage, device accounting, views, strict lifetimes."""

import numpy as np
import pytest

from repro.hardware.specs import GPUSpec
from repro.memsim.device import Device
from repro.tensor.tensor import Tensor, dtype_size

MB = 1024 * 1024
SPEC = GPUSpec("t", 64 * MB, 1e12)


def test_dtype_sizes():
    assert dtype_size(np.float16) == 2
    assert dtype_size(np.float32) == 4
    assert dtype_size(np.int64) == 8
    with pytest.raises(ValueError):
        dtype_size(np.complex64)


def test_real_tensor_allocates_on_device():
    d = Device(SPEC)
    t = Tensor((100, 100), np.float32, data=np.zeros((100, 100), np.float32), device=d)
    assert t.nbytes == 100 * 100 * 4
    assert d.allocated_bytes == d.raw.aligned(t.nbytes)
    t.free()
    assert d.allocated_bytes == 0


def test_meta_tensor_allocates_without_data():
    d = Device(SPEC)
    t = Tensor.meta((1000,), np.float16, device=d)
    assert t.is_meta
    # Device rounds to the 512-byte allocator alignment.
    assert d.allocated_bytes == 2048 and t.nbytes == 2000
    with pytest.raises(ValueError, match="meta"):
        t.numpy()
    t.free()


def test_view_does_not_allocate():
    d = Device(SPEC)
    base = Tensor((10, 10), np.float32, data=np.ones((10, 10), np.float32), device=d)
    view = Tensor((100,), np.float32, data=base.data.reshape(-1), device=d, alloc=False)
    base_alloc = d.allocated_bytes
    assert base_alloc == d.raw.aligned(base.nbytes)  # only the base
    view.free()  # freeing a view is a no-op on device memory
    assert d.allocated_bytes == base_alloc
    base.free()


def test_double_free_is_strict():
    t = Tensor.zeros((4,), np.float32)
    t.free()
    with pytest.raises(ValueError, match="already freed"):
        t.free()
    t2 = Tensor.zeros((4,), np.float32)
    t2.free_if_alive()
    t2.free_if_alive()  # idempotent variant


def test_shape_validation():
    with pytest.raises(ValueError, match="shape"):
        Tensor((2, 3), np.float32, data=np.zeros((3, 2), np.float32))


def test_from_numpy_preserves_dtype_and_shape():
    a = np.arange(6, dtype=np.int64).reshape(2, 3)
    t = Tensor.from_numpy(a)
    assert t.shape == (2, 3)
    assert t.dtype == np.int64
    assert t.size == 6
    assert t.nbytes == 48
    assert t.ndim == 2


def test_reshaped_inplace_keeps_ownership():
    d = Device(SPEC)
    t = Tensor((4, 4), np.float32, data=np.zeros((4, 4), np.float32), device=d)
    out = t.reshaped_inplace((16,))
    assert out is t
    assert t.shape == (16,)
    assert d.allocated_bytes == d.raw.aligned(64)
    with pytest.raises(ValueError):
        t.reshaped_inplace((5,))
    t.free()
    assert d.allocated_bytes == 0


def test_zero_size_tensor_costs_nothing():
    d = Device(SPEC)
    t = Tensor((0,), np.float32, data=np.zeros((0,), np.float32), device=d)
    assert d.allocated_bytes == 0
    t.free()


def test_scalar_tensor():
    t = Tensor((), np.float32, data=np.asarray(3.5, np.float32))
    assert t.size == 1
    assert float(t.numpy()) == 3.5


def test_like_builds_on_same_device():
    d = Device(SPEC)
    t = Tensor.zeros((4,), np.float32, device=d)
    other = t.like(np.ones((2, 2), np.float32))
    assert other.device is d
    assert other.shape == (2, 2)
    meta = t.like(None, shape=(3,), dtype=np.float16)
    assert meta.is_meta and meta.dtype == np.float16
    with pytest.raises(ValueError):
        t.like(None)  # meta requires explicit shape/dtype
    t.free()
    other.free()
    meta.free()


def test_repr_mentions_kind():
    assert "meta" in repr(Tensor.meta((2,), np.float32))
    assert "real" in repr(Tensor.zeros((2,), np.float32))
