"""Selective weight decay (param groups over the flat space)."""

import numpy as np
import pytest

from repro import Cluster, GPTConfig, ZeROConfig
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.nn.layers import make_param
from repro.optim.adam import AdamHyperparams
from repro.optim.decay import build_decay_mask, default_weight_decay_filter
from repro.optim.flat import FlatLayout
from repro.parallel.engine import EngineConfig
from repro.zero.factory import build_model_and_engine

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)
WORLD = 2


class TestFilterAndMask:
    def test_default_filter_convention(self):
        assert default_weight_decay_filter("gpt2.h0.mlp.fc1.weight")
        assert default_weight_decay_filter("gpt2.emb.wte.weight")
        assert not default_weight_decay_filter("gpt2.h0.mlp.fc1.bias")
        assert not default_weight_decay_filter("gpt2.h0.ln1.gamma")
        assert not default_weight_decay_filter("gpt2.h0.ln2.beta")

    def test_mask_covers_exact_ranges(self):
        params = [
            make_param("a.weight", (4,), init="zeros"),
            make_param("a.bias", (3,), init="zeros"),
            make_param("b.gamma", (2,), init="ones"),
        ]
        layout = FlatLayout(params, pad_multiple=4)
        mask = build_decay_mask(layout, default_weight_decay_filter)
        np.testing.assert_array_equal(mask[:4], 1.0)
        np.testing.assert_array_equal(mask[4:9], 0.0)
        np.testing.assert_array_equal(mask[9:], 0.0)  # padding never decays


def run(stage, *, wd, use_filter, steps=3):
    cluster = Cluster(WORLD, gpu=GPU, timeout_s=60.0)

    def fn(ctx):
        zero = ZeROConfig(stage=stage, checkpoint_activations=False, memory_defrag=False)
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
            engine_config=EngineConfig(
                adam=AdamHyperparams(lr=1e-3, weight_decay=wd),
                weight_decay_filter=default_weight_decay_filter if use_filter else None,
            ),
        )
        for step in range(steps):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            engine.train_step(ids, tgt)
        grads_off = {
            p.name: p.data.numpy().copy() for p in model.parameters()
            if not p.data.freed
        }
        return engine.opt_state.master.data.copy(), grads_off

    return cluster.run(fn)


class TestEngineIntegration:
    def test_filter_changes_only_excluded_params(self):
        """LN gammas drift with uniform decay but not with the filter."""
        cluster = Cluster(1, gpu=GPU)

        def fn(ctx, use_filter):
            zero = ZeROConfig(stage=0, checkpoint_activations=False, memory_defrag=False)
            model, engine = build_model_and_engine(
                ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
                engine_config=EngineConfig(
                    adam=AdamHyperparams(lr=0.0, weight_decay=0.5),  # decay only
                    weight_decay_filter=default_weight_decay_filter if use_filter else None,
                ),
            )
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=0)
            engine.train_step(ids, tgt)
            gamma = next(p for p in model.parameters() if p.name.endswith("ln1.gamma"))
            weight = next(p for p in model.parameters() if p.name.endswith("fc1.weight"))
            return float(np.abs(gamma.data.numpy() - 1.0).max()), \
                float(np.abs(weight.data.numpy()).mean())

        # lr=0 means the only motion is... none: AdamW couples decay with lr.
        # Use a real lr and compare gammas instead.
        def fn2(ctx, use_filter):
            zero = ZeROConfig(stage=0, checkpoint_activations=False, memory_defrag=False)
            model, engine = build_model_and_engine(
                ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
                engine_config=EngineConfig(
                    adam=AdamHyperparams(lr=1e-2, weight_decay=5.0),
                    weight_decay_filter=default_weight_decay_filter if use_filter else None,
                ),
            )
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=0)
            engine.train_step(ids, tgt)
            gamma = next(p for p in model.parameters() if p.name.endswith("ln1.gamma"))
            return gamma.data.numpy().copy()

        uniform = Cluster(1, gpu=GPU).run(lambda c: fn2(c, False))[0]
        filtered = Cluster(1, gpu=GPU).run(lambda c: fn2(c, True))[0]
        assert not np.array_equal(uniform, filtered)
        # With heavy uniform decay gammas get dragged toward 0 harder.
        assert np.abs(uniform).mean() < np.abs(filtered).mean()
        del fn

    @pytest.mark.parametrize("stage", [1, 2, 3])
    def test_masked_decay_identical_across_stages(self, stage):
        ddp = run(0, wd=0.1, use_filter=True)
        z = run(stage, wd=0.1, use_filter=True)
        full = ddp[0][0]
        part = len(full) // WORLD
        for rank in range(WORLD):
            np.testing.assert_array_equal(
                z[rank][0], full[rank * part : (rank + 1) * part]
            )

    def test_no_filter_means_uniform_decay(self):
        a = run(2, wd=0.1, use_filter=False)
        b = run(2, wd=0.1, use_filter=False)
        np.testing.assert_array_equal(a[0][0], b[0][0])  # deterministic
        c = run(2, wd=0.1, use_filter=True)
        assert not np.array_equal(a[0][0], c[0][0])  # filter matters
