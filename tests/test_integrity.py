"""Silent-data-corruption defense: injection -> detection -> rollback.

Acceptance properties (ISSUE 4 / docs/ARCHITECTURE.md §10):

* A seeded scribble in a stage-2 optimizer shard is detected by the
  digest/cross-rank audit within the audit cadence, the Supervisor rolls
  back to the last *verified* checkpoint, and the resumed run's final
  params are bitwise identical to a fault-free run of the same seed.
* Injected checkpoint bit rot is rejected at load (checksum mismatch)
  and the retention ring falls back to the previous verified checkpoint
  instead of failing the run.
* With integrity disabled (the default ``audit_cadence=0``), behavior is
  byte-identical to a build without the layer: no auditor object, no
  audit collectives, identical losses and final state.
* The detection taxonomy holds: post-reduce flips diverge one replica
  (cross-rank audit's job); pre-reduce flips keep replicas bitwise
  identical while silently corrupting them all (only the sentinels can
  see those); scribbles on owned shards trip the digest guard before the
  optimizer can launder them into a legitimate-looking update.
"""

import numpy as np
import pytest

from repro import (
    Cluster,
    CorruptionDetectedError,
    FaultPlan,
    GPTConfig,
    RestartPolicy,
    Supervisor,
    VerifiedCheckpointRing,
    ZeROConfig,
)
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.integrity import IntegrityConfig, SpikeWindow
from repro.integrity.digest import (
    combine_digests,
    digest_array,
    digest_scalars,
    fast_digest_array,
)
from repro.optim.adam import AdamHyperparams
from repro.restart import RestartKind
from repro.parallel.engine import EngineConfig
from repro.zero.checkpoint_io import (
    is_complete_checkpoint,
    latest_checkpoint,
    load_checkpoint,
    load_checkpoint_resharded,
    save_checkpoint,
)
from repro.zero.factory import build_model_and_engine

pytestmark = [pytest.mark.sdc, pytest.mark.faults]

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)
WORLD = 2


def build(ctx, stage, *, audit=0, dtype=np.float32):
    zero = ZeROConfig(stage=stage, checkpoint_activations=False,
                      memory_defrag=False, audit_cadence=audit)
    return build_model_and_engine(
        ctx, CFG, zero, dp_group=ctx.world, dtype=dtype, seed=3,
        engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
    )


def train(engine, ctx, start, steps):
    losses = []
    for step in range(start, start + steps):
        ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
        losses.append(engine.train_step(ids, tgt).loss)
    return losses


# -- digests -----------------------------------------------------------------


class TestDigests:
    def test_deterministic_and_sensitive_to_one_element(self):
        a = np.arange(64, dtype=np.float32)
        assert digest_array(a) == digest_array(a.copy())
        b = a.copy()
        b[17] = np.nextafter(b[17], np.float32(np.inf))  # one-ulp difference
        assert digest_array(a) != digest_array(b)

    def test_distinguishes_dtype_and_shape(self):
        a32 = np.zeros(8, dtype=np.float32)
        assert digest_array(a32) != digest_array(np.zeros(8, dtype=np.float16))
        assert digest_array(a32) != digest_array(np.zeros((2, 4), dtype=np.float32))

    def test_scalar_digest_covers_every_field(self):
        base = digest_scalars(3, 0, 3, 1024.0, 2, 0)
        assert base == digest_scalars(3, 0, 3, 1024.0, 2, 0)
        assert base != digest_scalars(3, 0, 3, 512.0, 2, 0)
        assert base != digest_scalars(4, 0, 3, 1024.0, 2, 0)

    def test_combine_is_order_sensitive(self):
        assert combine_digests(1, 2) != combine_digests(2, 1)

    def test_fast_digest_single_bit_sensitivity(self):
        """The guard's fast hash must catch any single flipped bit — the
        hardware threat model — in any byte, including a non-word tail."""
        rng = np.random.default_rng(2)
        for size in (64, 67):  # word-aligned and ragged-tail buffers
            a = rng.standard_normal(size).astype(np.float32)
            base = fast_digest_array(a)
            assert base == fast_digest_array(a.copy())
            assert 0 <= base < 2**32
            for byte in (0, size * 2 + 1, size * 4 - 1):
                b = a.copy()
                b.view(np.uint8)[byte] ^= 0x04
                assert fast_digest_array(b) != base, byte

    def test_fast_digest_distinguishes_dtype_and_shape(self):
        a = np.zeros(8, dtype=np.float32)
        assert fast_digest_array(a) != fast_digest_array(np.zeros(8, np.float16))
        assert fast_digest_array(a) != fast_digest_array(np.zeros((2, 4), np.float32))


# -- anomaly sentinels -------------------------------------------------------


class TestSpikeWindow:
    def test_normal_values_pass(self):
        w = SpikeWindow("loss", min_history=2, spike_factor=10.0)
        assert all(w.observe(v) is None for v in (2.0, 2.1, 1.9, 2.05))

    def test_non_finite_flagged_immediately(self):
        w = SpikeWindow("loss")
        assert w.observe(float("nan")) is not None
        assert w.observe(float("inf")) is not None
        assert w.observe(float("-inf")) is not None

    def test_spike_needs_history(self):
        w = SpikeWindow("grad-norm", min_history=4, spike_factor=10.0)
        assert w.observe(1e9) is None  # no baseline yet -> benign
        for v in (1.0, 1.1, 0.9, 1.0):
            assert w.observe(v) is None
        assert w.observe(1e9) is not None

    def test_anomaly_does_not_pollute_the_window(self):
        w = SpikeWindow("loss", min_history=2, spike_factor=10.0)
        for v in (1.0, 1.0, 1.0):
            w.observe(v)
        assert w.observe(1e6) is not None
        # The spike was not admitted as history: normal values still pass,
        # an equal follow-up spike still trips.
        assert w.observe(1.0) is None
        assert w.observe(1e6) is not None


# -- injection (FaultPlan corruption rules) ----------------------------------


class TestInjection:
    def test_flip_is_seeded_and_copy_on_write(self):
        arr = np.arange(32, dtype=np.float32)
        outs = []
        for _ in range(2):
            plan = FaultPlan(seed=5).flip_bits(rank=0, op="all_reduce")
            out = plan.corrupt_payload(0, "all_reduce", arr, "post")
            assert out is not None and out is not arr
            outs.append(out)
        np.testing.assert_array_equal(outs[0], outs[1])  # same seed, same flip
        np.testing.assert_array_equal(arr, np.arange(32, dtype=np.float32))
        assert digest_array(outs[0]) != digest_array(arr)

    def test_flip_fires_bounded_times_and_matches_rule(self):
        plan = FaultPlan(seed=5).flip_bits(rank=1, op="all_gather", nth=2, times=1)
        arr = np.ones(4, dtype=np.float32)
        assert plan.corrupt_payload(0, "all_gather", arr, "post") is None  # rank
        assert plan.corrupt_payload(1, "all_reduce", arr, "post") is None  # op
        assert plan.corrupt_payload(1, "all_gather", arr, "pre") is None   # when
        assert plan.corrupt_payload(1, "all_gather", arr, "post") is None  # match 1
        assert plan.corrupt_payload(1, "all_gather", arr, "post") is not None
        assert plan.corrupt_payload(1, "all_gather", arr, "post") is None  # spent
        assert [e.kind for e in plan.events] == ["bitflip"]

    def test_scribble_rule_consumed_once(self):
        plan = FaultPlan(seed=5).scribble_tensor(rank=1, at_step=3, target="m")
        assert plan.scribbles_due(0, 3) == []
        assert plan.scribbles_due(1, 2) == []
        due = plan.scribbles_due(1, 3)
        assert [(r.target, r.bits) for r in due] == [("m", 1)]
        assert plan.scribbles_due(1, 4) == []  # stays consumed (restarts too)
        assert plan.events[0].kind == "scribble"

    def test_rot_flips_file_bits_in_place(self, tmp_path):
        path = tmp_path / "rank0.npz"
        payload = bytes(range(256)) * 8
        path.write_bytes(payload)
        plan = FaultPlan(seed=5).rot_checkpoint(rank=0, bits=3)
        assert plan.on_checkpoint_saved(0, path)
        rotted = path.read_bytes()
        assert len(rotted) == len(payload) and rotted != payload
        assert plan.on_checkpoint_saved(0, path) is False  # bounded
        assert plan.events[0].kind == "ckpt-rot"

    def test_builder_validation(self):
        with pytest.raises(ValueError, match="pre"):
            FaultPlan().flip_bits(when="mid")
        with pytest.raises(ValueError, match="target"):
            FaultPlan().scribble_tensor(rank=0, at_step=1, target="weights")
        with pytest.raises(ValueError, match=">= 1"):
            FaultPlan().rot_checkpoint(nth=0)


# -- detection ---------------------------------------------------------------


class TestDetection:
    @pytest.mark.parametrize("stage,target", [(2, "master"), (1, "v"), (3, "param_shard")])
    def test_scribble_trips_shard_digest_guard(self, stage, target):
        """A bit flip in an owned shard is caught at the next optimizer
        boundary, before the optimizer consumes the shard."""
        plan = FaultPlan(seed=11).scribble_tensor(rank=1, at_step=3, target=target)

        def fn(ctx):
            model, engine = build(ctx, stage, audit=4)
            train(engine, ctx, 0, 5)

        with pytest.raises(CorruptionDetectedError) as info:
            Cluster(WORLD, gpu=GPU, timeout_s=15.0, fault_plan=plan).run(fn)
        assert info.value.kind == "shard-digest"
        assert info.value.rank == 1
        assert info.value.step == 3

    @pytest.mark.offload
    def test_scribble_on_host_resident_shard_is_detected(self):
        """ZeRO-Offload keeps the Adam moments in host DRAM, but the
        digest guard sees the same flat arrays through ``.data`` — a
        scribble on the host-resident ``v`` shard is caught identically."""
        plan = FaultPlan(seed=11).scribble_tensor(rank=1, at_step=3, target="v")

        def fn(ctx):
            zero = ZeROConfig(stage=2, checkpoint_activations=False,
                              memory_defrag=False, audit_cadence=2,
                              offload_optimizer=True, offload_gradients=True)
            model, engine = build_model_and_engine(
                ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
                engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
            )
            train(engine, ctx, 0, 5)

        with pytest.raises(CorruptionDetectedError) as info:
            Cluster(WORLD, gpu=GPU, timeout_s=15.0, fault_plan=plan).run(fn)
        assert info.value.kind == "shard-digest"
        assert info.value.rank == 1
        assert info.value.step == 3

    def test_post_reduce_flip_trips_cross_rank_audit(self):
        """A post-reduce flip diverges one rank's replica of state ZeRO
        replicates; the periodic digest all-gather catches it."""
        plan = FaultPlan(seed=11).flip_bits(rank=1, op="all_gather", when="post")

        def fn(ctx):
            model, engine = build(ctx, 2, audit=1)
            train(engine, ctx, 0, 5)

        with pytest.raises(CorruptionDetectedError) as info:
            Cluster(WORLD, gpu=GPU, timeout_s=15.0, fault_plan=plan).run(fn)
        assert info.value.kind == "cross-rank"

    def test_pre_reduce_flip_is_invisible_to_replica_comparison(self):
        """A pre-reduce flip corrupts the *contribution*, so every rank
        reduces the same wrong value: replicas stay bitwise identical (the
        audit passes by design — this is the sentinels' blind-spot case),
        but the trajectory silently diverges from the fault-free run."""
        def fn(ctx):
            model, engine = build(ctx, 0, audit=1)
            losses = train(engine, ctx, 0, 4)
            return losses, engine.layout.gather_params(np.float32)

        clean = Cluster(WORLD, gpu=GPU, timeout_s=15.0).run(fn)
        plan = FaultPlan(seed=11).flip_bits(
            rank=0, op="all_reduce", when="pre", bits=4
        )
        out = Cluster(WORLD, gpu=GPU, timeout_s=15.0, fault_plan=plan).run(fn)
        assert plan.events and plan.events[0].kind == "bitflip"
        # Replicas agree with each other...
        np.testing.assert_array_equal(out[0][1], out[1][1])
        # ...but not with the truth.
        assert not np.array_equal(out[0][1], clean[0][1])

    def test_sentinels_flag_spikes_but_not_overflow_skips(self):
        """The sentinels observe applied steps only: a loss-scale overflow
        skip is the LossScaler's business, a spike on an applied step is
        corruption."""
        def fn(ctx):
            model, engine = build(ctx, 1, audit=1)
            train(engine, ctx, 0, 5)
            auditor = engine.integrity
            # Overflow path: a skipped step feeds the sentinels nothing.
            auditor.after_optimizer(6, applied=False, loss=float("inf"))
            auditor.note_grad_norm(1.0)
            with pytest.raises(CorruptionDetectedError) as info:
                auditor.after_optimizer(6, applied=True, loss=1e30)
            assert info.value.kind == "sentinel"
            with pytest.raises(CorruptionDetectedError):
                auditor.note_grad_norm(1e30)
            return True

        assert Cluster(1, gpu=GPU, timeout_s=15.0).run(fn) == [True]


# -- the invariant the cross-rank audit relies on ----------------------------


class TestReplicatedStateInvariant:
    @pytest.mark.parametrize("stage", [0, 1, 2])
    def test_fp16_params_bitwise_identical_across_ranks(self, stage):
        """DDP and ZeRO stages 1-2 keep full fp16 parameters on every
        rank; after N fault-free steps they must agree bitwise — the
        property that makes digest comparison a valid corruption test."""
        def fn(ctx):
            model, engine = build(ctx, stage, audit=2, dtype=np.float16)
            train(engine, ctx, 0, 4)
            return np.concatenate(
                [p.data.numpy().ravel() for p in engine.layout.parameters]
            ).tobytes()

        blobs = Cluster(WORLD, gpu=GPU, timeout_s=15.0).run(fn)
        assert blobs[0] == blobs[1]


# -- checkpoint checksums + the verified ring --------------------------------


class TestCheckpointIntegrity:
    def _save(self, tmp_path, directory="c", plan=None):
        def fn(ctx):
            model, engine = build(ctx, 2)
            train(engine, ctx, 0, 1)
            save_checkpoint(engine, tmp_path / directory)

        Cluster(WORLD, gpu=GPU, timeout_s=15.0, fault_plan=plan).run(fn)
        return tmp_path / directory

    def test_bit_rot_rejected_at_load(self, tmp_path):
        ckpt = self._save(tmp_path)
        blob = bytearray((ckpt / "rank1.npz").read_bytes())
        blob[len(blob) // 2] ^= 0x10
        (ckpt / "rank1.npz").write_bytes(bytes(blob))

        def reader(ctx):
            model, engine = build(ctx, 2)
            with pytest.raises(ValueError, match="corrupt|checksum"):
                load_checkpoint(engine, ckpt)
            return True

        assert Cluster(WORLD, gpu=GPU, timeout_s=15.0).run(reader) == [True] * WORLD

    def test_injected_rot_rejected_at_load(self, tmp_path):
        plan = FaultPlan(seed=9).rot_checkpoint(rank=0)
        ckpt = self._save(tmp_path, plan=plan)
        assert [e.kind for e in plan.events] == ["ckpt-rot"]

        def reader(ctx):
            model, engine = build(ctx, 2)
            with pytest.raises(ValueError, match="corrupt|checksum"):
                load_checkpoint(engine, ckpt)
            return True

        assert Cluster(WORLD, gpu=GPU, timeout_s=15.0).run(reader) == [True] * WORLD

    def test_latest_checkpoint_skips_rotted_newest(self, tmp_path):
        """Discovery must fall back past a bit-rotted newest checkpoint,
        exactly like it falls back past a torn one."""
        def fn(ctx):
            model, engine = build(ctx, 2)
            train(engine, ctx, 0, 1)
            save_checkpoint(engine, tmp_path / "step1")
            train(engine, ctx, 1, 1)
            save_checkpoint(engine, tmp_path / "step2")

        Cluster(WORLD, gpu=GPU, timeout_s=15.0).run(fn)
        assert latest_checkpoint(tmp_path) == tmp_path / "step2"
        blob = bytearray((tmp_path / "step2" / "rank0.npz").read_bytes())
        blob[len(blob) // 2] ^= 0x01
        (tmp_path / "step2" / "rank0.npz").write_bytes(bytes(blob))
        assert not is_complete_checkpoint(tmp_path / "step2")
        assert latest_checkpoint(tmp_path) == tmp_path / "step1"

    def test_ring_saves_verify_and_prune(self, tmp_path):
        def fn(ctx):
            model, engine = build(ctx, 2, audit=2)
            ring = VerifiedCheckpointRing(tmp_path / "ring", keep=2)
            outcomes = []
            for start in range(0, 6, 2):
                train(engine, ctx, start, 2)
                outcomes.append(ring.save(engine))
            return [str(p) for p in outcomes], [
                p.name for p in ring.verified_checkpoints()
            ]

        out = Cluster(WORLD, gpu=GPU, timeout_s=15.0).run(fn)
        outcomes, kept = out[0]
        assert out[1] == out[0]  # SPMD: all ranks agree on every verdict
        assert all(o != "None" for o in outcomes)
        assert kept == ["step00000004", "step00000006"]  # keep=2 pruned step 2

    def test_ring_falls_back_past_injected_rot(self, tmp_path):
        """Acceptance: bit rot on a ring save is rejected at verification
        and the previous verified checkpoint stays the rollback target."""
        plan = FaultPlan(seed=9).rot_checkpoint(rank=0, nth=2)

        def fn(ctx):
            model, engine = build(ctx, 2, audit=2)
            ring = VerifiedCheckpointRing(tmp_path / "ring", keep=3)
            outcomes = []
            for start in range(0, 4, 2):
                train(engine, ctx, start, 2)
                outcomes.append(ring.save(engine))
            return [o.name if o else None for o in outcomes], (
                ring.latest_verified().name
            )

        out = Cluster(WORLD, gpu=GPU, timeout_s=15.0, fault_plan=plan).run(fn)
        for outcomes, latest in out:
            assert outcomes == ["step00000002", None]  # second save rotted
            assert latest == "step00000002"
        assert [e.kind for e in plan.events] == ["ckpt-rot"]


# -- end-to-end: detect -> roll back -> converge bitwise ---------------------


TOTAL_STEPS = 6
CKPT_EVERY = 2


def make_supervised_fn(root, *, audit=1):
    """Re-entrant training function: resume from the newest *verified*
    checkpoint, save into the ring every CKPT_EVERY steps."""

    def train_fn(ctx):
        model, engine = build(ctx, 2, audit=audit)
        ring = VerifiedCheckpointRing(root, keep=3)
        latest = ring.latest_verified()
        if latest is not None:
            load_checkpoint_resharded(engine, latest)
        losses = []
        for step in range(engine.step_count, TOTAL_STEPS):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            losses.append(engine.train_step(ids, tgt).loss)
            if engine.step_count % CKPT_EVERY == 0:
                ring.save(engine)
        return losses, engine.layout.gather_params(np.float32)

    return train_fn


class TestSupervisorRollback:
    def test_scribble_detected_rolled_back_bitwise_identical(self, tmp_path):
        """Acceptance: a seeded bit flip in a stage-2 optimizer shard is
        detected within the cadence, the Supervisor rolls back to the last
        verified checkpoint, and the resumed run's final params match a
        fault-free run bitwise."""
        clean = Supervisor(WORLD, gpu=GPU, timeout_s=15.0).run(
            make_supervised_fn(tmp_path / "clean")
        )
        assert clean.restarts == 0

        plan = FaultPlan(seed=11).scribble_tensor(rank=1, at_step=4, target="m")
        sup = Supervisor(WORLD, gpu=GPU, fault_plan=plan, timeout_s=15.0)
        report = sup.run(make_supervised_fn(tmp_path / "faulty"))

        assert report.restarts == 1
        assert report.final_world_size == WORLD
        (event,) = report.events
        assert event.kind == RestartKind.ROLLBACK
        assert event.world_before == event.world_after == WORLD
        assert event.killed_ranks == ()
        assert "shard-digest" in event.error
        # Bitwise-identical convergence after the rollback.
        for rank in range(WORLD):
            np.testing.assert_array_equal(
                report.results[rank][1], clean.results[rank][1]
            )
        assert report.results[0][0][-1] == clean.results[0][0][-1]

    def test_repeat_offender_is_quarantined(self, tmp_path):
        """Two detections attributed to the same rank escalate from
        rollback to quarantine: the world shrinks by one through the
        elastic re-shard path and the survivors finish the job."""
        plan = (FaultPlan(seed=3)
                .scribble_tensor(rank=1, at_step=3, target="master")
                .scribble_tensor(rank=1, at_step=5, target="v"))
        sup = Supervisor(
            WORLD, gpu=GPU, fault_plan=plan, timeout_s=15.0,
            policy=RestartPolicy(max_restarts=3, quarantine_after=2),
        )
        report = sup.run(make_supervised_fn(tmp_path / "q"))
        assert [e.kind for e in report.events] == [RestartKind.ROLLBACK, RestartKind.QUARANTINE]
        assert report.events[1].killed_ranks == (1,)
        assert report.final_world_size == WORLD - 1
        losses, _ = report.results[0]
        assert losses  # the shrunken world completed the run


# -- overflow vs retry interaction -------------------------------------------


class TestOverflowRetryInteraction:
    def test_retried_overflow_vote_does_not_double_count(self):
        """An overflow whose global vote (an all-reduce) is transiently
        retried must count as exactly one skipped step: scaler state and
        the trajectory match the fault-free run bitwise."""
        from repro import RetryPolicy

        def fn(ctx):
            model, engine = build(ctx, 2, dtype=np.float16)
            losses = train(engine, ctx, 0, 2)
            engine.scaler.scale = 1e6  # guarantees an fp16 overflow
            losses += train(engine, ctx, 2, 3)
            s = engine.scaler
            return losses, (s.scale, s.n_skipped, s.good_steps)

        ref = Cluster(WORLD, gpu=GPU, timeout_s=15.0).run(fn)
        plan = FaultPlan(seed=5).fail_collective(op="all_reduce", nth=1, times=2)
        out = Cluster(
            WORLD, gpu=GPU, timeout_s=15.0, fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=4, base_backoff_s=0.001),
        ).run(fn)
        assert [e.kind for e in plan.events] == ["transient"] * 4  # 2 ranks x 2
        assert out == ref  # scaler state + losses bitwise, no double-count
        assert ref[0][1][1] >= 1  # the scenario really did skip steps


# -- zero overhead when disabled ---------------------------------------------


class TestZeroOverhead:
    def test_default_off_allocates_nothing_and_matches_audited_run(self):
        """audit_cadence=0 (default): no auditor object, no audit
        collectives; and because the audit is read-only, enabling it on a
        fault-free run must not perturb the trajectory either."""
        def fn_off(ctx):
            model, engine = build(ctx, 2)
            losses = train(engine, ctx, 0, 4)
            assert engine.integrity is None
            assert "integrity-audit" not in ctx.ledger.by_phase()
            return losses, engine.layout.gather_params(np.float32), ctx.ledger.by_phase()

        def fn_on(ctx):
            model, engine = build(ctx, 2, audit=2)
            losses = train(engine, ctx, 0, 4)
            assert engine.integrity is not None
            # Control message: never appears in the volume ledger.
            assert "integrity-audit" not in ctx.ledger.by_phase()
            return losses, engine.layout.gather_params(np.float32), ctx.ledger.by_phase()

        off = Cluster(WORLD, gpu=GPU, timeout_s=15.0).run(fn_off)
        on = Cluster(WORLD, gpu=GPU, timeout_s=15.0).run(fn_on)
        for rank in range(WORLD):
            assert off[rank][0] == on[rank][0]  # losses bitwise
            np.testing.assert_array_equal(off[rank][1], on[rank][1])
            assert off[rank][2] == on[rank][2]  # comm volume identical

    def test_config_label_and_validation(self):
        assert "SDC@4" in ZeROConfig(stage=2, audit_cadence=4).label
        assert "SDC" not in ZeROConfig(stage=2).label
        with pytest.raises(ValueError, match="audit_cadence"):
            ZeROConfig(stage=2, audit_cadence=-1)
        with pytest.raises(ValueError, match="audit_cadence"):
            IntegrityConfig(audit_cadence=0)
