"""Optimizers: Adam math, loss scaler, flat layout, mixed-precision state."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.specs import GPUSpec
from repro.memsim.device import Device
from repro.nn.layers import Linear, make_param
from repro.nn.module import ExecutionContext
from repro.optim.adam import Adam, AdamHyperparams, SGD, adam_step_inplace
from repro.optim.flat import FlatLayout
from repro.optim.mixed_precision import ADAM_K, FlatAdamState, MixedPrecisionAdam
from repro.optim.scaler import LossScaler
from repro.tensor.tensor import Tensor

SPEC = GPUSpec("t", 256 * 1024 * 1024, 1e12)


def reference_adam(params, grads_seq, hp):
    """Straightforward textbook Adam for cross-checking."""
    m = np.zeros_like(params)
    v = np.zeros_like(params)
    p = params.copy()
    for t, g in enumerate(grads_seq, start=1):
        m = hp.beta1 * m + (1 - hp.beta1) * g
        v = hp.beta2 * v + (1 - hp.beta2) * g * g
        mhat = m / (1 - hp.beta1**t)
        vhat = v / (1 - hp.beta2**t)
        p = p - hp.lr * (mhat / (np.sqrt(vhat) + hp.eps) + hp.weight_decay * p)
    return p


class TestAdamMath:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 9999), steps=st.integers(1, 5), wd=st.sampled_from([0.0, 0.01]))
    def test_matches_reference(self, seed, steps, wd):
        rng = np.random.default_rng(seed)
        hp = AdamHyperparams(lr=1e-2, weight_decay=wd)
        p0 = rng.standard_normal(16).astype(np.float32)
        grads = [rng.standard_normal(16).astype(np.float32) for _ in range(steps)]
        master = p0.copy()
        m = np.zeros_like(master)
        v = np.zeros_like(master)
        for t, g in enumerate(grads, start=1):
            adam_step_inplace(master, m, v, g, t, hp)
        np.testing.assert_allclose(master, reference_adam(p0, grads, hp), rtol=1e-5, atol=1e-7)

    def test_step_must_be_positive(self):
        a = np.zeros(2, np.float32)
        with pytest.raises(ValueError):
            adam_step_inplace(a, a.copy(), a.copy(), a.copy(), 0, AdamHyperparams())

    def test_shape_mismatch(self):
        a = np.zeros(2, np.float32)
        with pytest.raises(ValueError, match="shape"):
            adam_step_inplace(a, a.copy(), a.copy(), np.zeros(3, np.float32), 1, AdamHyperparams())

    def test_adam_reduces_quadratic_loss(self):
        rng = np.random.default_rng(0)
        lin = Linear("l", 4, 1, dtype=np.float32, rng=rng)
        opt = Adam(lin.parameters(), AdamHyperparams(lr=0.05))
        target = np.array([[1.0]], np.float32)
        x = rng.standard_normal((1, 4)).astype(np.float32)
        losses = []
        for _ in range(120):
            y, cache = lin.forward(Tensor.from_numpy(x), ExecutionContext())
            err = y.numpy() - target
            losses.append(float((err**2).sum()))
            lin.backward(cache, Tensor.from_numpy(2 * err))
            opt.step()
            opt.zero_grad()
        assert losses[-1] < losses[0] * 1e-3

    def test_sgd_descends(self):
        rng = np.random.default_rng(0)
        p = make_param("p", (4,), dtype=np.float32, init="normal", std=1.0,
                       rng=rng)
        opt = SGD([p], lr=0.5)
        for _ in range(30):
            p.zero_grad()
            p.accumulate_grad(Tensor.from_numpy(2 * p.data.numpy()))  # d/dp |p|^2
            opt.step()
        assert np.abs(p.data.numpy()).max() < 1e-3


class TestLossScaler:
    def test_static_scale_skips_on_overflow_but_keeps_scale(self):
        s = LossScaler(1024, dynamic=False)
        assert s.update(overflow=True) is False
        assert s.scale == 1024
        assert s.update(overflow=False) is True

    def test_dynamic_backoff_and_growth(self):
        s = LossScaler(1024, dynamic=True, growth_interval=2)
        s.update(True)
        assert s.scale == 512
        s.update(False)
        s.update(False)
        assert s.scale == 1024  # grew after 2 clean steps

    def test_scale_bounds(self):
        s = LossScaler(2.0, dynamic=True, min_scale=1.0, max_scale=4.0, growth_interval=1)
        s.update(True)
        s.update(True)
        assert s.scale == 1.0  # clamped at min
        for _ in range(5):
            s.update(False)
        assert s.scale == 4.0  # clamped at max

    def test_overflow_detection(self):
        assert LossScaler.has_overflow(np.array([1.0, np.inf]))
        assert LossScaler.has_overflow(np.array([np.nan]))
        assert not LossScaler.has_overflow(np.array([1e30]))

    def test_overflow_detection_each_nonfinite_kind_alone(self):
        """NaN-only, +Inf-only, and -Inf-only gradients must each trip the
        overflow check on their own (the integrity sentinels rely on this
        taxonomy: non-finite -> overflow path, finite spike -> corruption)."""
        finite = np.full(7, 1e-3, dtype=np.float32)
        for bad in (np.nan, np.inf, -np.inf):
            grad = finite.copy()
            grad[3] = bad
            assert LossScaler.has_overflow(grad), bad
        assert not LossScaler.has_overflow(finite)
        assert not LossScaler.has_overflow(np.array([np.finfo(np.float16).max]))

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            LossScaler(0)


class TestFlatLayout:
    def make_params(self, sizes=(5, 3, 7), dtype=np.float32):
        return [
            make_param(f"p{i}", (s,), dtype=dtype, init="zeros")
            for i, s in enumerate(sizes)
        ]

    def test_offsets_contiguous(self):
        layout = FlatLayout(self.make_params())
        assert [(s.offset, s.end) for s in layout.slots] == [(0, 5), (5, 8), (8, 15)]
        assert layout.numel_unpadded == 15

    def test_padding_to_multiple(self):
        layout = FlatLayout(self.make_params(), pad_multiple=4)
        assert layout.numel == 16
        lo, hi = layout.partition_bounds(4, 3)
        assert (lo, hi) == (12, 16)

    def test_partition_requires_divisibility(self):
        layout = FlatLayout(self.make_params())
        with pytest.raises(ValueError, match="divisible"):
            layout.partition_bounds(4, 0)

    def test_gather_scatter_roundtrip(self):
        params = self.make_params()
        rng = np.random.default_rng(0)
        for p in params:
            p.data.data = rng.standard_normal(p.shape).astype(np.float32)
        layout = FlatLayout(params, pad_multiple=4)
        flat = layout.gather_params(np.float32)
        for p in params:
            p.data.data = np.zeros(p.shape, np.float32)
        layout.scatter_params(flat)
        for p, s in zip(params, layout.slots):
            np.testing.assert_array_equal(p.data.numpy(), flat[s.offset : s.end])

    def test_range_ops(self):
        params = self.make_params()
        layout = FlatLayout(params)
        layout.scatter_param_range(np.full(6, 9.0, np.float32), 3, 9)
        np.testing.assert_array_equal(params[0].data.numpy(), [0, 0, 0, 9, 9])
        np.testing.assert_array_equal(params[1].data.numpy(), [9, 9, 9])
        np.testing.assert_array_equal(params[2].data.numpy(), [9] + [0] * 6)
        piece = layout.gather_param_range(3, 9)
        np.testing.assert_array_equal(piece, np.full(6, 9.0))

    def test_grad_range_missing(self):
        params = self.make_params()
        layout = FlatLayout(params)
        with pytest.raises(ValueError, match="no gradient"):
            layout.gather_grad_range(0, 5)
        np.testing.assert_array_equal(
            layout.gather_grad_range(0, 5, missing_ok=True), np.zeros(5)
        )

    def test_slots_in_range(self):
        layout = FlatLayout(self.make_params())
        names = [s.name for s in layout.slots_in_range(4, 9)]
        assert names == ["p0", "p1", "p2"]
        assert [s.name for s in layout.slots_in_range(5, 8)] == ["p1"]

    def test_duplicate_names_rejected(self):
        p = make_param("same", (2,), init="zeros")
        q = make_param("same", (2,), init="zeros")
        with pytest.raises(ValueError, match="duplicate"):
            FlatLayout([p, q])

    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 20), min_size=1, max_size=8),
        pad=st.sampled_from([1, 2, 4, 8]),
        seed=st.integers(0, 999),
    )
    def test_property_scatter_range_union_is_scatter(self, sizes, pad, seed):
        """Scattering all partitions piecewise == scattering the whole vector."""
        params_a = [make_param(f"p{i}", (s,), init="zeros") for i, s in enumerate(sizes)]
        params_b = [make_param(f"p{i}", (s,), init="zeros") for i, s in enumerate(sizes)]
        layout_a = FlatLayout(params_a, pad_multiple=pad)
        layout_b = FlatLayout(params_b, pad_multiple=pad)
        flat = np.random.default_rng(seed).standard_normal(layout_a.numel).astype(np.float32)
        layout_a.scatter_params(flat)
        for i in range(pad):
            lo, hi = layout_b.partition_bounds(pad, i)
            layout_b.scatter_param_range(flat[lo:hi], lo, hi)
        for pa, pb in zip(params_a, params_b):
            np.testing.assert_array_equal(pa.data.numpy(), pb.data.numpy())


class TestFlatAdamState:
    def test_k12_memory_footprint(self):
        d = Device(SPEC)
        state = FlatAdamState(1000, device=d)
        assert ADAM_K == 12
        assert state.nbytes == 12 * 1000  # 3 x fp32
        assert d.allocated_bytes >= state.nbytes
        state.free()
        assert d.allocated_bytes == 0

    def test_meta_state_reserves_without_data(self):
        d = Device(SPEC)
        state = FlatAdamState(1000, device=d, meta=True)
        assert state.is_meta
        assert d.allocated_bytes >= 12 * 1000
        assert state.step(None) is None
        state.free()

    def test_step_updates_master(self):
        state = FlatAdamState(4, hp=AdamHyperparams(lr=0.1))
        state.init_master(np.ones(4, np.float32))
        out = state.step(np.ones(4, np.float32))
        assert np.all(out < 1.0)  # moved against the gradient

    def test_init_master_validation(self):
        state = FlatAdamState(4)
        with pytest.raises(ValueError):
            state.init_master(np.ones(5, np.float32))


class TestMixedPrecisionAdam:
    def test_full_replica_matches_eager_adam(self):
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        lin1 = Linear("l", 6, 6, dtype=np.float32, rng=rng1)
        lin2 = Linear("l", 6, 6, dtype=np.float32, rng=rng2)
        mp = MixedPrecisionAdam(lin1, hp=AdamHyperparams(lr=0.01))
        eager = Adam(lin2.parameters(), AdamHyperparams(lr=0.01))
        g = np.random.default_rng(1).standard_normal((6, 6)).astype(np.float32)
        for _ in range(3):
            lin1.weight.accumulate_grad(Tensor.from_numpy(g))
            lin1.bias.accumulate_grad(Tensor.from_numpy(g[0]))
            lin2.weight.accumulate_grad(Tensor.from_numpy(g))
            lin2.bias.accumulate_grad(Tensor.from_numpy(g[0]))
            mp.step()
            mp.zero_grad()
            eager.step()
            eager.zero_grad()
        np.testing.assert_allclose(
            lin1.weight.data.numpy(), lin2.weight.data.numpy(), rtol=1e-6
        )

    def test_overflow_skips_update(self):
        rng = np.random.default_rng(0)
        lin = Linear("l", 4, 4, dtype=np.float32, rng=rng)
        mp = MixedPrecisionAdam(lin, scaler=LossScaler(2.0, dynamic=True))
        before = lin.weight.data.numpy().copy()
        bad = np.full((4, 4), np.inf, np.float32)
        lin.weight.accumulate_grad(Tensor.from_numpy(bad))
        lin.bias.accumulate_grad(Tensor.from_numpy(np.zeros(4, np.float32)))
        assert mp.step() is False
        np.testing.assert_array_equal(lin.weight.data.numpy(), before)
        assert mp.loss_scale == 1.0  # halved from 2.0
