"""Memory timeline tracer: sampling, phase peaks, engine integration."""

import numpy as np
import pytest

from repro import Cluster, GPTConfig, ZeROConfig
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.memsim.device import Device
from repro.memsim.timeline import MemoryTimeline
from repro.zero.factory import build_model_and_engine

GPU = GPUSpec("t", 2 * 10**9, 1e12)
SPEC = GPUSpec("small", 64 * 1024 * 1024, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)


class TestTracerBasics:
    def test_records_every_event(self):
        d = Device(SPEC)
        tl = MemoryTimeline(d)
        a = d.alloc(1000, "a")
        b = d.alloc(2000, "b")
        d.free(a)
        assert len(tl.samples) == 3
        assert tl.samples[0].delta > 0
        assert tl.samples[2].delta < 0
        assert tl.samples[1].allocated >= tl.samples[2].allocated
        d.free(b)
        tl.detach()

    def test_phase_marks(self):
        d = Device(SPEC)
        tl = MemoryTimeline(d)
        tl.mark("fwd")
        x = d.alloc(1000, "x")
        tl.mark("bwd")
        y = d.alloc(5000, "y")
        d.free(x)
        d.free(y)
        peaks = tl.phase_peaks()
        assert set(peaks) == {"fwd", "bwd"}
        assert peaks["bwd"] >= peaks["fwd"]
        tl.detach()

    def test_detach_restores_device(self):
        d = Device(SPEC)
        tl = MemoryTimeline(d)
        tl.detach()
        e = d.alloc(1000)
        d.free(e)
        assert tl.samples == []

    def test_largest_allocations(self):
        d = Device(SPEC)
        tl = MemoryTimeline(d)
        for i, size in enumerate([512, 8192, 1024]):
            d.alloc(size, f"t{i}")
        top = tl.largest_allocations(2)
        assert top[0].tag == "t1"
        assert top[0].delta >= top[1].delta
        tl.detach()

    def test_ascii_plot_renders(self):
        d = Device(SPEC)
        tl = MemoryTimeline(d)
        tl.mark("a")
        extents = [d.alloc(1000 * (i + 1)) for i in range(10)]
        tl.mark("b")
        for e in extents:
            d.free(e)
        plot = tl.ascii_plot(width=20, height=4)
        assert "peak" in plot and "#" in plot and "phases: a | b" in plot
        tl.detach()
        assert MemoryTimeline(d).ascii_plot() == "(no samples)"


class TestEngineIntegration:
    def _profile(self, stage):
        cluster = Cluster(2, gpu=GPU, timeout_s=60.0)

        def fn(ctx):
            zero = ZeROConfig(stage=stage, checkpoint_activations=False,
                              memory_defrag=False)
            model, engine = build_model_and_engine(
                ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=0,
            )
            tl = MemoryTimeline(ctx.device)
            engine.timeline = tl
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=0)
            engine.train_step(ids, tgt)
            tl.detach()
            return tl.phase_peaks()

        return cluster.run(fn)[0]

    def test_phases_labelled_in_order(self):
        peaks = self._profile(stage=2)
        assert set(peaks) >= {"forward", "backward", "reduce", "optimizer"}

    def test_forward_peak_below_backward_peak(self):
        """Backward holds activations + gradients: its peak dominates."""
        peaks = self._profile(stage=0)
        assert peaks["backward"] >= peaks["forward"]

    def test_stage2_backward_peak_below_stage0(self):
        """Stage 2 frees gradients during backward: lower backward peak."""
        p0 = self._profile(stage=0)
        p2 = self._profile(stage=2)
        assert p2["backward"] < p0["backward"]
