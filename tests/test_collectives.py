"""Collective semantics: NCCL/MPI definitions + cross-collective identities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.specs import GPUSpec
from repro.runtime import Cluster

GPU = GPUSpec("t", 10**8, 1e12)


def run_world(n, fn):
    return Cluster(n, gpu=GPU, timeout_s=10.0).run(fn)


def per_rank_data(n, length, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(length).astype(np.float32) for _ in range(n)]


def test_all_reduce_sum():
    data = per_rank_data(4, 8)
    expected = np.sum(data, axis=0, dtype=np.float32)
    results = run_world(4, lambda ctx: ctx.world.all_reduce(ctx.rank, data[ctx.rank]))
    for r in results:
        np.testing.assert_allclose(r, expected, rtol=1e-6)


def test_all_reduce_deterministic_across_ranks():
    data = per_rank_data(4, 1000, seed=3)
    results = run_world(4, lambda ctx: ctx.world.all_reduce(ctx.rank, data[ctx.rank]))
    for r in results[1:]:
        np.testing.assert_array_equal(r, results[0])  # bitwise


@pytest.mark.parametrize("op,npop", [("max", np.max), ("min", np.min)])
def test_all_reduce_max_min(op, npop):
    data = per_rank_data(3, 6)
    expected = npop(np.stack(data), axis=0)
    results = run_world(3, lambda ctx: ctx.world.all_reduce(ctx.rank, data[ctx.rank], op=op))
    for r in results:
        np.testing.assert_allclose(r, expected)


def test_all_reduce_avg():
    data = per_rank_data(4, 6)
    expected = np.mean(np.stack(data), axis=0)
    results = run_world(4, lambda ctx: ctx.world.all_reduce(ctx.rank, data[ctx.rank], op="avg"))
    np.testing.assert_allclose(results[0], expected, rtol=1e-6)


def test_all_reduce_fp16_accumulates_in_fp32():
    # Values that overflow a naive fp16 chain-sum but not fp32.
    data = [np.full(4, 20000.0, np.float16) for _ in range(4)]
    results = run_world(4, lambda ctx: ctx.world.all_reduce(ctx.rank, data[ctx.rank]))
    assert np.all(np.isinf(results[0]))  # 80000 > fp16 max: inf after cast back
    small = [np.full(4, 0.0001, np.float16) for _ in range(4)]
    results = run_world(4, lambda ctx: ctx.world.all_reduce(ctx.rank, small[ctx.rank]))
    # fp32 accumulation keeps the small sum accurate before the final cast.
    np.testing.assert_allclose(results[0].astype(np.float32), 0.0004, rtol=1e-2)


def test_reduce_only_dst_receives():
    data = per_rank_data(4, 8)
    expected = np.sum(data, axis=0, dtype=np.float32)
    results = run_world(4, lambda ctx: ctx.world.reduce(ctx.rank, data[ctx.rank], dst=2))
    np.testing.assert_allclose(results[2], expected, rtol=1e-6)
    assert results[0] is None and results[1] is None and results[3] is None


def test_reduce_scatter_shards():
    data = per_rank_data(4, 16)
    total = np.sum(data, axis=0, dtype=np.float32)
    results = run_world(4, lambda ctx: ctx.world.reduce_scatter(ctx.rank, data[ctx.rank]))
    for rank, shard in enumerate(results):
        np.testing.assert_allclose(shard, total[rank * 4 : (rank + 1) * 4], rtol=1e-6)


def test_reduce_scatter_requires_divisible_length():
    def fn(ctx):
        return ctx.world.reduce_scatter(ctx.rank, np.ones(7, np.float32))

    with pytest.raises(Exception):
        run_world(4, fn)


def test_all_gather_concatenates_in_rank_order():
    results = run_world(
        4, lambda ctx: ctx.world.all_gather(ctx.rank, np.full(3, ctx.rank, np.float32))
    )
    expected = np.repeat(np.arange(4, dtype=np.float32), 3)
    for r in results:
        np.testing.assert_array_equal(r, expected)


def test_broadcast_from_each_src():
    for src in range(3):
        payload = np.arange(5, dtype=np.float32) + 100 * src

        def fn(ctx, s=src, p=payload):
            return ctx.world.broadcast(ctx.rank, p if ctx.rank == s else None, src=s)

        results = run_world(3, fn)
        for r in results:
            np.testing.assert_array_equal(r, payload)


def test_broadcast_receivers_get_private_copies():
    payload = np.zeros(4, np.float32)

    def fn(ctx):
        out = ctx.world.broadcast(ctx.rank, payload if ctx.rank == 0 else None, src=0)
        if ctx.rank == 1:
            out += 99  # must not corrupt other ranks' views
        ctx.barrier()
        return out.copy()

    results = run_world(3, fn)
    np.testing.assert_array_equal(results[2], np.zeros(4))


def test_gather_to_dst():
    def fn(ctx):
        return ctx.world.gather(ctx.rank, np.array([ctx.rank], np.float32), dst=1)

    results = run_world(3, fn)
    assert results[0] is None
    np.testing.assert_array_equal(np.concatenate(results[1]), [0, 1, 2])


def test_scatter_from_src():
    pieces = [np.full(2, i, np.float32) for i in range(4)]

    def fn(ctx):
        return ctx.world.scatter(ctx.rank, pieces if ctx.rank == 0 else None, src=0)

    results = run_world(4, fn)
    for rank, r in enumerate(results):
        np.testing.assert_array_equal(r, np.full(2, rank))


def test_all_to_all_transposes():
    def fn(ctx):
        outgoing = [np.array([ctx.rank * 10 + j], np.float32) for j in range(3)]
        return ctx.world.all_to_all(ctx.rank, outgoing)

    results = run_world(3, fn)
    for j, received in enumerate(results):
        np.testing.assert_array_equal(
            np.concatenate(received), [i * 10 + j for i in range(3)]
        )


def test_allreduce_equals_reducescatter_then_allgather():
    """The identity Section 7.1 builds on: all-reduce = RS o AG."""
    data = per_rank_data(4, 16, seed=9)

    def fn(ctx):
        shard = ctx.world.reduce_scatter(ctx.rank, data[ctx.rank])
        composed = ctx.world.all_gather(ctx.rank, shard)
        direct = ctx.world.all_reduce(ctx.rank, data[ctx.rank])
        return composed, direct

    for composed, direct in run_world(4, fn):
        np.testing.assert_array_equal(composed, direct)


@settings(max_examples=10, deadline=None)
@given(
    length=st.integers(1, 32),
    world=st.sampled_from([2, 3, 4]),
    seed=st.integers(0, 1000),
)
def test_property_allgather_of_scatter_is_identity(length, world, seed):
    rng = np.random.default_rng(seed)
    full = rng.standard_normal(length * world).astype(np.float32)
    pieces = [full[i * length : (i + 1) * length] for i in range(world)]

    def fn(ctx):
        mine = ctx.world.scatter(ctx.rank, pieces if ctx.rank == 0 else None, src=0)
        return ctx.world.all_gather(ctx.rank, mine)

    for r in run_world(world, fn):
        np.testing.assert_array_equal(r, full)
