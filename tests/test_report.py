"""The consolidated report runner (subset smoke: fast experiments only)."""

import pathlib

from repro.experiments import report


def test_run_all_subset(monkeypatch, tmp_path):
    monkeypatch.setattr(
        report, "EXPERIMENTS",
        [("table1", "Table 1"), ("sec9", "Section 9"), ("fig2", "Figure 2")],
    )
    text = report.run_all()
    assert text.startswith("# ZeRO reproduction report")
    for title in ("## Table 1", "## Section 9", "## Figure 2"):
        assert title in text
    assert "regenerated in" in text


def test_main_writes_file(monkeypatch, tmp_path):
    monkeypatch.setattr(report, "EXPERIMENTS", [("sec9", "Section 9")])
    out = tmp_path / "r.md"
    monkeypatch.setattr("sys.argv", ["report", str(out)])
    report.main()
    assert "Section 9" in out.read_text()


def test_full_experiment_list_is_complete():
    ids = [module for module, _ in report.EXPERIMENTS]
    assert ids == [
        "fig1", "table1", "table2", "fig2", "fig3", "fig4", "fig5",
        "fig6", "fig7", "fig8", "sec7", "sec8", "sec9",
    ]


def test_repo_report_artifact_exists():
    root = pathlib.Path(__file__).parent.parent
    artifact = root / "reproduction_report.md"
    assert artifact.exists()
    text = artifact.read_text()
    assert "Section 9" in text and "Figure 7" in text
