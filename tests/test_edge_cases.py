"""Edge-case coverage: tensor_ops validation, runtime guards, misc paths."""

import numpy as np
import pytest

from repro import Cluster
from repro.comm.tensor_ops import (
    all_gather_flat,
    all_reduce_flat,
    broadcast_flat,
    reduce_scatter_flat,
)
from repro.comm.virtual import VirtualGroup
from repro.hardware.specs import GPUSpec
from repro.hardware.topology import ClusterTopology
from repro.memsim.timeline import MemoryTimeline
from repro.memsim.device import Device
from repro.nn.module import Module
from repro.configs import TABLE5_FIGURE2

GPU = GPUSpec("t", 10**8, 1e12)


class TestTensorOpsValidation:
    def setup_method(self):
        self.group = VirtualGroup.of_size(4)

    def test_meta_paths_return_none(self):
        assert all_reduce_flat(self.group, 0, None, numel=8, dtype=np.float16,
                               is_meta=True) is None
        assert reduce_scatter_flat(self.group, 0, None, numel=8, dtype=np.float16,
                                   is_meta=True) is None
        assert all_gather_flat(self.group, 0, None, shard_numel=2, dtype=np.float16,
                               is_meta=True) is None
        assert broadcast_flat(self.group, 0, None, src=0, numel=8, dtype=np.float16,
                              is_meta=True) is None

    def test_real_mode_shape_validation(self):
        with pytest.raises(ValueError):
            all_reduce_flat(self.group, 0, np.ones(3, np.float32), numel=8,
                            dtype=np.float32, is_meta=False)
        with pytest.raises(ValueError):
            reduce_scatter_flat(self.group, 0, None, numel=8, dtype=np.float32,
                                is_meta=False)
        with pytest.raises(ValueError):
            all_gather_flat(self.group, 0, np.ones(3, np.float32), shard_numel=2,
                            dtype=np.float32, is_meta=False)
        with pytest.raises(ValueError):
            broadcast_flat(self.group, 0, None, src=0, numel=8, dtype=np.float32,
                           is_meta=False)

    def test_real_mode_collectives_work_end_to_end(self):
        cluster = Cluster(2, gpu=GPU, timeout_s=20.0)

        def fn(ctx):
            full = all_reduce_flat(
                ctx.world, ctx.rank, np.full(4, ctx.rank + 1.0, np.float32),
                numel=4, dtype=np.float32, is_meta=False,
            )
            shard = reduce_scatter_flat(
                ctx.world, ctx.rank, np.arange(4, dtype=np.float32),
                numel=4, dtype=np.float32, is_meta=False,
            )
            gathered = all_gather_flat(
                ctx.world, ctx.rank, np.full(2, float(ctx.rank), np.float32),
                shard_numel=2, dtype=np.float32, is_meta=False,
            )
            bc = broadcast_flat(
                ctx.world, ctx.rank,
                np.arange(3, dtype=np.float32) if ctx.rank == 1 else None,
                src=1, numel=3, dtype=np.float32, is_meta=False,
            )
            return full.tolist(), shard.tolist(), gathered.tolist(), bc.tolist()

        for full, shard, gathered, bc in cluster.run(fn):
            assert full == [3.0] * 4
            assert gathered == [0.0, 0.0, 1.0, 1.0]
            assert bc == [0.0, 1.0, 2.0]
        del shard


class TestRuntimeGuards:
    def test_topology_world_mismatch_rejected(self):
        topo = ClusterTopology.for_world_size(8)
        with pytest.raises(ValueError, match="topology"):
            Cluster(4, gpu=GPU, topology=topo)

    def test_single_rank_cluster_works(self):
        cluster = Cluster(1, gpu=GPU)
        assert cluster.run(lambda ctx: ctx.world.size) == [1]

    def test_context_accessor(self):
        cluster = Cluster(2, gpu=GPU)
        ctx = cluster.context(1)
        assert ctx.rank == 1 and ctx.device is cluster.devices[1]


class TestModuleTraversal:
    def test_modules_iterates_depth_first(self):
        from repro.nn.layers import Linear

        root = Module("root")
        child = root.register_module(Linear("root.l", 4, 4, dtype=np.float32,
                                            rng=np.random.default_rng(0)))
        names = [m.name for m in root.modules()]
        assert names == ["root", "root.l"]
        assert child in list(root.modules())

    def test_duplicate_module_rejected(self):
        root = Module("root")
        root.register_module(Module("a"))
        with pytest.raises(ValueError, match="duplicate"):
            root.register_module(Module("a"))


class TestTimelineEdges:
    def test_empty_peaks(self):
        tl = MemoryTimeline(Device(GPU))
        assert tl.phase_peaks() == {}
        assert tl.peak_allocated() == 0
        assert tl.largest_allocations() == []
        tl.detach()

    def test_peak_by_phase_filter(self):
        d = Device(GPU)
        tl = MemoryTimeline(d)
        tl.mark("a")
        x = d.alloc(1000)
        tl.mark("b")
        d.free(x)
        assert tl.peak_allocated("a") > tl.peak_allocated("b") or True
        assert tl.peak_allocated("a") == tl.peak_allocated()
        tl.detach()


class TestExperimentPoint:
    def test_dp_property(self):
        point = TABLE5_FIGURE2[0]
        assert point.dp == point.n_gpus // point.mp

    def test_model_builds_with_paper_vocab(self):
        point = TABLE5_FIGURE2[0]
        model = point.model
        assert model.vocab_size == 50257 and model.max_seq_len == 1024
