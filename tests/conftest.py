"""Shared fixtures and helpers for the test suite.

Also home of the deadlock guard: the fabric's whole point is that
failures raise instead of hanging, so a regression that reintroduces a
deadlock must *fail* the suite, not stall it. Every test runs under a
SIGALRM-based timeout (a pytest-timeout analog — that plugin isn't
available offline): generous by default, short for ``faults``-marked
tests, overridable per test with ``@pytest.mark.timeout_guard(seconds)``.
"""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest

from repro.hardware.specs import GPUSpec
from repro.nn.transformer import GPTConfig

# Per-test wall-clock budgets for the deadlock guard (seconds).
GUARD_TIMEOUT_S = 300.0
FAULTS_GUARD_TIMEOUT_S = 90.0


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "faults: fault-injection / elastic-recovery tests (short deadlock-guard "
        "timeout; these tests use short fabric timeouts so failures stay fast)",
    )
    config.addinivalue_line(
        "markers",
        "timeout_guard(seconds): override the per-test deadlock-guard timeout",
    )
    config.addinivalue_line(
        "markers",
        "offload: ZeRO-Offload engine tests (host-resident optimizer, PCIe "
        "stream, delayed parameter update)",
    )
    config.addinivalue_line(
        "markers",
        "telemetry: span tracer / metrics registry / Chrome-trace export tests",
    )
    config.addinivalue_line(
        "markers",
        "sdc: silent-data-corruption defense tests (bit-flip injection, "
        "integrity audits, verified-checkpoint ring, supervisor rollback)",
    )
    config.addinivalue_line(
        "markers",
        "failslow: fail-slow (gray-failure) defense tests (performance-fault "
        "injection, straggler detection, slow-rank eviction)",
    )
    config.addinivalue_line(
        "markers",
        "perfscope: critical-path analytics tests (stall attribution, "
        "what-if probes, perf-regression gate)",
    )
    config.addinivalue_line(
        "markers",
        "redundancy: buddy-shard redundancy tests (replica/EC placement, "
        "fast recovery, ring fallback)",
    )
    config.addinivalue_line(
        "markers",
        "chaos: randomized mixed-fault soak campaigns (kills + gray "
        "failures + SDC + checkpoint rot)",
    )
    config.addinivalue_line(
        "markers",
        "obs: Mission Control tests (run ledger, incident analytics, "
        "goodput/SLO accounting, exporters)",
    )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    override = item.get_closest_marker("timeout_guard")
    if override is not None:
        seconds = float(override.args[0])
    elif (
        item.get_closest_marker("faults") is not None
        or item.get_closest_marker("failslow") is not None
    ):
        seconds = FAULTS_GUARD_TIMEOUT_S
    else:
        seconds = GUARD_TIMEOUT_S
    # SIGALRM only works on the main thread of a Unix process; elsewhere
    # (or under xdist-style workers) run unguarded rather than break.
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return (yield)

    def _on_alarm(signum, frame):
        pytest.fail(
            f"deadlock guard: test still running after {seconds:.0f}s — "
            "a fabric failure path is hanging instead of raising",
            pytrace=True,
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)

# A small simulated GPU so tests exercise real capacity limits fast.
TEST_GPU = GPUSpec(name="test-gpu", memory_bytes=2 * 10**9, peak_flops=1e12)

TINY_MODEL = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_model_config() -> GPTConfig:
    return TINY_MODEL


@pytest.fixture
def test_gpu() -> GPUSpec:
    return TEST_GPU
