"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.specs import GPUSpec
from repro.nn.transformer import GPTConfig

# A small simulated GPU so tests exercise real capacity limits fast.
TEST_GPU = GPUSpec(name="test-gpu", memory_bytes=2 * 10**9, peak_flops=1e12)

TINY_MODEL = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_model_config() -> GPTConfig:
    return TINY_MODEL


@pytest.fixture
def test_gpu() -> GPUSpec:
    return TEST_GPU
