"""Attention, transformer blocks, and the GPT-2 model: gradients, shapes,
activation checkpointing, unit listener ordering, memory hygiene."""

import numpy as np
import pytest

from repro.hardware.specs import GPUSpec
from repro.memsim.device import Device
from repro.nn.attention import MultiHeadAttention
from repro.nn.loss import CausalLMLoss
from repro.nn.module import ExecutionContext
from repro.nn.transformer import GPT2Model, GPTConfig, TransformerBlock

CTX = ExecutionContext()
SPEC = GPUSpec("t", 512 * 1024 * 1024, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=53, max_seq_len=16)


def full_step(model, ids, targets, ctx=CTX):
    """forward + loss + backward; returns (loss value, caches to free)."""
    from repro.tensor.tensor import Tensor

    loss_head = CausalLMLoss()
    logits, cache = model.forward(Tensor.from_numpy(ids), ctx)
    loss, lcache = loss_head.forward(logits, Tensor.from_numpy(targets))
    dlogits = loss_head.backward(lcache)
    demb = model.backward(cache, dlogits)
    value = float(loss.numpy())
    for obj in (lcache, cache):
        obj.free()
    for t in (dlogits, demb, logits, loss):
        t.free_if_alive()
    return value


class TestAttention:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        attn = MultiHeadAttention("a", 32, 4, dtype=np.float32, rng=rng)
        from repro.tensor.tensor import Tensor

        x = Tensor.from_numpy(rng.standard_normal((2, 8, 32)).astype(np.float32))
        y, cache = attn.forward(x, CTX)
        assert y.shape == (2, 8, 32)
        dx = attn.backward(cache, Tensor.from_numpy(np.ones((2, 8, 32), np.float32)))
        assert dx.shape == (2, 8, 32)

    def test_causality(self):
        """Changing a future token must not change earlier outputs."""
        rng = np.random.default_rng(0)
        attn = MultiHeadAttention("a", 16, 2, dtype=np.float64, rng=rng)
        from repro.tensor.tensor import Tensor

        x = rng.standard_normal((1, 6, 16))
        y1, c1 = attn.forward(Tensor.from_numpy(x), CTX)
        x2 = x.copy()
        x2[0, 5] += 10.0  # perturb the last position
        y2, c2 = attn.forward(Tensor.from_numpy(x2), CTX)
        np.testing.assert_array_equal(y1.numpy()[0, :5], y2.numpy()[0, :5])
        assert not np.allclose(y1.numpy()[0, 5], y2.numpy()[0, 5])

    def test_heads_must_divide_hidden(self):
        with pytest.raises(ValueError):
            MultiHeadAttention("a", 30, 4, dtype=np.float32, rng=np.random.default_rng(0))

    def test_block_gradcheck_spot(self):
        """One tight numerical check through the whole block (float64)."""
        rng = np.random.default_rng(1)
        blk = TransformerBlock("b", 16, 2, dtype=np.float64, rng=rng)
        from repro.tensor.tensor import Tensor

        x = rng.standard_normal((1, 4, 16))
        r = rng.standard_normal((1, 4, 16))
        y, cache = blk.forward(Tensor.from_numpy(x), CTX)
        dx = blk.backward(cache, Tensor.from_numpy(r))
        eps = 1e-6
        idx = (0, 2, 5)
        xp, xm = x.copy(), x.copy()
        xp[idx] += eps
        xm[idx] -= eps
        yp, cp = blk.forward(Tensor.from_numpy(xp), CTX)
        ym, cm = blk.forward(Tensor.from_numpy(xm), CTX)
        num = ((yp.numpy() - ym.numpy()) * r).sum() / (2 * eps)
        assert abs(dx.numpy()[idx] - num) < 1e-6


class TestGPTModel:
    def test_param_count_matches_config(self):
        rng = np.random.default_rng(0)
        model = GPT2Model(CFG, dtype=np.float32, rng=rng)
        assert model.num_parameters() == CFG.total_params

    def test_block_params_formula(self):
        # ~12 h^2 per block (the paper's sizing rule).
        h = CFG.hidden
        assert CFG.block_params == pytest.approx(12 * h * h, rel=0.05)

    def test_paper_model_sizes(self):
        # Table 4: 48 layers x 1600 hidden ~= the paper's "1.5B" model.
        cfg = GPTConfig(n_layers=48, hidden=1600, n_heads=16)
        assert cfg.total_params / 1e9 == pytest.approx(1.5, rel=0.15)
        cfg = GPTConfig(n_layers=125, hidden=8192, n_heads=64)
        assert cfg.total_params / 1e9 == pytest.approx(100, rel=0.05)

    def test_loss_starts_near_uniform(self):
        rng = np.random.default_rng(0)
        model = GPT2Model(CFG, dtype=np.float32, rng=rng)
        ids = rng.integers(0, CFG.vocab_size, (2, 8))
        tgt = rng.integers(0, CFG.vocab_size, (2, 8))
        loss = full_step(model, ids, tgt)
        assert loss == pytest.approx(np.log(CFG.vocab_size), rel=0.05)

    def test_seq_len_validated(self):
        rng = np.random.default_rng(0)
        model = GPT2Model(CFG, dtype=np.float32, rng=rng)
        from repro.tensor.tensor import Tensor

        with pytest.raises(ValueError, match="sequence length"):
            model.forward(Tensor.from_numpy(np.zeros((1, 17), np.int64)), CTX)

    def test_checkpointing_same_loss_and_grads(self):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        plain = GPT2Model(CFG, dtype=np.float32, rng=rng_a)
        ckpt = GPT2Model(CFG, dtype=np.float32, rng=rng_b, checkpoint_activations=True)
        ids = np.random.default_rng(1).integers(0, CFG.vocab_size, (2, 8))
        tgt = np.random.default_rng(2).integers(0, CFG.vocab_size, (2, 8))
        l1 = full_step(plain, ids, tgt)
        l2 = full_step(ckpt, ids, tgt)
        assert l1 == l2
        for p, q in zip(plain.parameters(), ckpt.parameters()):
            np.testing.assert_array_equal(p.grad.numpy(), q.grad.numpy())

    def test_checkpointing_reduces_activation_memory(self):
        cfg = GPTConfig(n_layers=4, hidden=64, n_heads=4, vocab_size=64, max_seq_len=32)

        def peak(checkpoint):
            d = Device(SPEC)
            rng = np.random.default_rng(0)
            model = GPT2Model(cfg, dtype=np.float32, rng=rng, device=d,
                              checkpoint_activations=checkpoint)
            baseline = d.allocated_bytes
            d.reset_peak_stats()
            ids = np.random.default_rng(1).integers(0, 64, (4, 32))
            from repro.nn.module import ExecutionContext
            from repro.tensor.tensor import Tensor

            logits, cache = model.forward(Tensor.from_numpy(ids), ExecutionContext())
            live_after_fwd = d.allocated_bytes - baseline
            cache.free()
            logits.free()
            return live_after_fwd

        assert peak(True) < peak(False) / 2  # checkpointing halves+ activations

    def test_memory_returns_to_params_after_full_step(self):
        d = Device(SPEC)
        rng = np.random.default_rng(0)
        model = GPT2Model(CFG, dtype=np.float32, rng=rng, device=d)
        after_init = d.allocated_bytes
        ids = np.random.default_rng(1).integers(0, CFG.vocab_size, (2, 8))
        tgt = np.random.default_rng(2).integers(0, CFG.vocab_size, (2, 8))
        full_step(model, ids, tgt)
        model.zero_grad()
        assert d.allocated_bytes == after_init  # no activation leaks

    def test_unit_listener_ordering(self):
        events = []

        class Recorder:
            def before_unit(self, unit):
                events.append(("before", unit.name))

            def after_unit(self, unit):
                events.append(("after", unit.name))

        rng = np.random.default_rng(0)
        model = GPT2Model(CFG, dtype=np.float32, rng=rng)
        model.unit_listener = Recorder()
        ids = np.random.default_rng(1).integers(0, CFG.vocab_size, (1, 4))
        tgt = np.random.default_rng(2).integers(0, CFG.vocab_size, (1, 4))
        full_step(model, ids, tgt)
        names = [n for _, n in events]
        # Forward: emb, h0, h1, head; backward: head, h1, h0, emb.
        assert names == [
            "gpt2.emb", "gpt2.emb", "gpt2.h0", "gpt2.h0", "gpt2.h1", "gpt2.h1",
            "gpt2.head", "gpt2.head",
            "gpt2.head", "gpt2.head", "gpt2.h1", "gpt2.h1", "gpt2.h0", "gpt2.h0",
            "gpt2.emb", "gpt2.emb",
        ]
        # Properly bracketed.
        kinds = [k for k, _ in events]
        assert kinds == ["before", "after"] * 8

    def test_units_order(self):
        rng = np.random.default_rng(0)
        model = GPT2Model(CFG, dtype=np.float32, rng=rng)
        names = [u.name for u in model.units()]
        assert names == ["gpt2.emb", "gpt2.h0", "gpt2.h1", "gpt2.head"]

    def test_meta_model_forward_backward(self):
        model = GPT2Model(CFG, dtype=np.float16, meta=True)
        from repro.tensor.tensor import Tensor

        ids = Tensor.meta((2, 8), np.int64)
        logits, cache = model.forward(ids, CTX)
        assert logits.is_meta and logits.shape == (2, 8, CFG.vocab_size)
        model.backward(cache, Tensor.meta((2, 8, CFG.vocab_size), np.float16)).free_if_alive()
        assert all(p.grad is not None and p.grad.is_meta for p in model.parameters())
