"""ZeRO-DP composed with Megatron MP (the Section 1 'ZeRO and MP' story):
end-to-end training equivalence against the serial model, with and without
Pa, across stages — the full Nd x Nm composition."""

import numpy as np
import pytest

from repro import Cluster, GPTConfig, ZeROConfig
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.optim.adam import AdamHyperparams
from repro.parallel.engine import EngineConfig
from repro.zero.factory import build_model_and_engine

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=64, max_seq_len=16)
CORPUS = SyntheticCorpus(64, seed=9)
MP = 2
WORLD = 4  # 2-way MP x 2-way DP


def run_composed(stage, *, partition_activations=False, steps=3):
    cluster = Cluster(WORLD, gpu=GPU, timeout_s=60.0)

    def fn(ctx):
        mp_index = ctx.rank % MP
        mp_ranks = [r for r in range(WORLD) if r // MP == ctx.rank // MP]
        dp_ranks = [r for r in range(WORLD) if r % MP == mp_index]
        zero = ZeROConfig(
            stage=stage, partition_activations=partition_activations,
            checkpoint_activations=True, memory_defrag=False,
        )
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.group(dp_ranks), mp_group=ctx.group(mp_ranks),
            dtype=np.float32, seed=5,
            engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3), bucket_numel=1500),
        )
        losses = []
        for step in range(steps):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank // MP, step=step)
            losses.append(engine.train_step(ids, tgt).loss)
        return losses, engine.layout.numel

    return cluster.run(fn)


def run_dp_only(stage, *, steps=3):
    """Reference: DP=2 with serial (non-MP) replicas on the same data."""
    cluster = Cluster(2, gpu=GPU, timeout_s=60.0)

    def fn(ctx):
        zero = ZeROConfig(stage=stage, checkpoint_activations=True, memory_defrag=False)
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=5,
            engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3), bucket_numel=1500),
        )
        losses = []
        for step in range(steps):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            losses.append(engine.train_step(ids, tgt).loss)
        return losses

    return cluster.run(fn)


@pytest.mark.parametrize("stage", [0, 1, 2])
def test_zero_mp_matches_dp_only_training(stage):
    """Same model, same data per DP replica: adding MP must not change
    the training trajectory (float32 all-reduce tolerance)."""
    composed = run_composed(stage)
    reference = run_dp_only(stage)
    for dp_replica in range(2):
        mp_rank_losses = composed[dp_replica * MP][0]
        ref = reference[dp_replica]
        np.testing.assert_allclose(mp_rank_losses, ref, rtol=2e-5)


@pytest.mark.parametrize("stage", [1, 2])
def test_pa_changes_nothing_numerically(stage):
    plain = run_composed(stage, partition_activations=False)
    pa = run_composed(stage, partition_activations=True)
    for rank in range(WORLD):
        assert plain[rank][0] == pa[rank][0]


def test_mp_partners_agree_and_replicas_shard():
    results = run_composed(2)
    # MP partners (same replica) compute identical losses.
    assert results[0][0] == results[1][0]
    assert results[2][0] == results[3][0]
    # Each rank's flat space is the MP-local parameter count, not the full model.
    assert results[0][1] < CFG.total_params


def test_stage3_composes_with_mp():
    composed = run_composed(3)
    reference = run_dp_only(3)
    for dp_replica in range(2):
        np.testing.assert_allclose(
            composed[dp_replica * MP][0], reference[dp_replica], rtol=2e-5
        )
