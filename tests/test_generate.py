"""Autoregressive generation on the GPT model."""

import numpy as np
import pytest

from repro.nn.generate import generate
from repro.nn.transformer import GPT2Model, GPTConfig

CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=53, max_seq_len=16)


@pytest.fixture(scope="module")
def model():
    return GPT2Model(CFG, dtype=np.float32, rng=np.random.default_rng(0))


def test_shapes_and_vocab(model):
    prompt = np.array([[1, 2, 3], [4, 5, 6]], np.int64)
    out = generate(model, prompt, max_new_tokens=5, temperature=0)
    assert out.shape == (2, 8)
    np.testing.assert_array_equal(out[:, :3], prompt)
    assert out.max() < CFG.vocab_size and out.min() >= 0


def test_greedy_is_deterministic(model):
    prompt = np.array([[7, 8]], np.int64)
    a = generate(model, prompt, max_new_tokens=4, temperature=0)
    b = generate(model, prompt, max_new_tokens=4, temperature=0)
    np.testing.assert_array_equal(a, b)


def test_sampling_reproducible_with_seed(model):
    prompt = np.array([[7, 8]], np.int64)
    a = generate(model, prompt, max_new_tokens=4, temperature=1.0,
                 rng=np.random.default_rng(3))
    b = generate(model, prompt, max_new_tokens=4, temperature=1.0,
                 rng=np.random.default_rng(3))
    np.testing.assert_array_equal(a, b)


def test_context_window_respected(model):
    prompt = np.zeros((1, 16), np.int64)  # already at max_seq_len
    out = generate(model, prompt, max_new_tokens=3, temperature=0)
    assert out.shape == (1, 19)  # slides the window instead of crashing


def test_top_k_restricts_choices(model):
    prompt = np.array([[1, 2]], np.int64)
    outs = {
        int(generate(model, prompt, max_new_tokens=1, temperature=1.0, top_k=1,
                     rng=np.random.default_rng(s))[0, -1])
        for s in range(8)
    }
    greedy = int(generate(model, prompt, max_new_tokens=1, temperature=0)[0, -1])
    assert outs == {greedy}  # top_k=1 == greedy regardless of seed


def test_validation(model):
    with pytest.raises(ValueError):
        generate(model, np.zeros(3, np.int64), max_new_tokens=1)
    with pytest.raises(ValueError):
        generate(model, np.zeros((1, 3), np.int64), max_new_tokens=0)
    with pytest.raises(ValueError):
        generate(model, np.zeros((1, 3), np.int64), max_new_tokens=1, temperature=1.0)


def test_no_memory_leak_on_device():
    from repro.hardware.specs import GPUSpec
    from repro.memsim.device import Device

    d = Device(GPUSpec("t", 10**9, 1e12))
    model = GPT2Model(CFG, dtype=np.float32, rng=np.random.default_rng(0), device=d)
    base = d.allocated_bytes
    generate(model, np.array([[1, 2]], np.int64), max_new_tokens=3, temperature=0)
    assert d.allocated_bytes == base
