"""Ledger-driven time estimation vs the analytic performance model."""

import numpy as np
import pytest

from repro.analysis.perf_model import PerfModel, transformer_flops_per_replica
from repro.analysis.sim_time import LedgerTimeEstimator
from repro.comm.virtual import VirtualGroup
from repro.configs import TABLE5_FIGURE2
from repro.hardware.topology import ClusterTopology
from repro.runtime import virtual_rank_context
from repro.tensor.tensor import Tensor
from repro.utils.units import GB
from repro.zero.config import C4
from repro.zero.factory import build_model_and_engine


def record_meta_step(point):
    """One meta-mode step on a virtual rank; returns (ledger, flops/GPU)."""
    ctx = virtual_rank_context(point.n_gpus)
    mp_group = VirtualGroup.of_size(point.mp, member_rank=0)
    mp_group.attach_ledger(0, ctx.ledger)
    dp_group = VirtualGroup(tuple(range(0, point.n_gpus, point.mp)), member_rank=0)
    dp_group.attach_ledger(0, ctx.ledger)
    model, engine = build_model_and_engine(
        ctx, point.model, C4, dp_group=dp_group, mp_group=mp_group,
        meta=True, md_region_bytes=int(2 * GB),
    )
    ids = Tensor.meta((point.batch, 1024), np.int64, device=ctx.device)
    tgt = Tensor.meta((point.batch, 1024), np.int64, device=ctx.device)
    ctx.ledger.clear()
    engine.train_step(ids, tgt)
    flops = transformer_flops_per_replica(point.model, point.batch) / point.mp
    return ctx.ledger, flops


@pytest.fixture(scope="module")
def point_100b():
    return next(p for p in TABLE5_FIGURE2 if p.label == "100B" and p.system == "zero")


def test_ledger_estimate_in_paper_regime(point_100b):
    ledger, flops = record_meta_step(point_100b)
    est = LedgerTimeEstimator(ClusterTopology.for_world_size(point_100b.n_gpus)).estimate(
        ledger, flops_per_gpu=flops, hidden=point_100b.hidden
    )
    # The recorded-schedule estimate must land in the paper's regime.
    assert 25 < est.tflops_per_gpu < 55
    assert est.compute_s > est.collective_s  # compute-dominated, as measured


def test_ledger_estimate_tracks_analytic_model(point_100b):
    """Recorded-schedule time ~ analytic PerfModel time (same mechanisms,
    different derivations: within a small factor, never orders apart)."""
    ledger, flops = record_meta_step(point_100b)
    est = LedgerTimeEstimator(ClusterTopology.for_world_size(point_100b.n_gpus)).estimate(
        ledger, flops_per_gpu=flops, hidden=point_100b.hidden
    )
    analytic = PerfModel().estimate(
        point_100b.model, batch=point_100b.batch, mp_degree=point_100b.mp,
        n_gpus=point_100b.n_gpus, zero_stage=2, partition_activations=True,
    )
    assert est.total_s == pytest.approx(analytic.step_s, rel=0.5)
    assert est.compute_s == pytest.approx(analytic.compute_s, rel=0.01)


def test_pcie_events_priced_separately(point_100b):
    from repro.zero.config import C5

    ctx = virtual_rank_context(point_100b.n_gpus)
    mp_group = VirtualGroup.of_size(point_100b.mp, member_rank=0)
    mp_group.attach_ledger(0, ctx.ledger)
    dp_group = VirtualGroup(tuple(range(0, point_100b.n_gpus, point_100b.mp)), member_rank=0)
    dp_group.attach_ledger(0, ctx.ledger)
    model, engine = build_model_and_engine(
        ctx, point_100b.model, C5, dp_group=dp_group, mp_group=mp_group,
        meta=True, md_region_bytes=int(2 * GB),
    )
    ids = Tensor.meta((point_100b.batch, 1024), np.int64, device=ctx.device)
    tgt = Tensor.meta((point_100b.batch, 1024), np.int64, device=ctx.device)
    ctx.ledger.clear()
    engine.train_step(ids, tgt)
    flops = transformer_flops_per_replica(point_100b.model, point_100b.batch) / point_100b.mp
    est = LedgerTimeEstimator(ClusterTopology.for_world_size(point_100b.n_gpus)).estimate(
        ctx.ledger, flops_per_gpu=flops, hidden=point_100b.hidden
    )
    assert est.pcie_s > 0  # Pa+cpu's offload traffic shows up
