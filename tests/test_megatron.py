"""Megatron tensor MP: parallel layers == serial numerics, comm pattern."""

import numpy as np
import pytest

from repro import Cluster, GPTConfig
from repro.hardware.specs import GPUSpec
from repro.nn.layers import Linear
from repro.nn.loss import CausalLMLoss
from repro.nn.module import ExecutionContext
from repro.nn.transformer import GPT2Model
from repro.parallel.megatron import (
    ColumnParallelLinear,
    ParallelGPT2Model,
    RowParallelLinear,
)
from repro.tensor.tensor import Tensor

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=64, max_seq_len=16)
CTX = ExecutionContext()


def run_world(n, fn):
    return Cluster(n, gpu=GPU, timeout_s=60.0).run(fn)


def serial_reference(ids, tgt, dtype=np.float64):
    rng = np.random.default_rng(3)
    model = GPT2Model(CFG, dtype=dtype, rng=rng)
    loss_head = CausalLMLoss()
    logits, cache = model.forward(Tensor.from_numpy(ids), CTX)
    loss, lcache = loss_head.forward(logits, Tensor.from_numpy(tgt))
    d = loss_head.backward(lcache)
    model.backward(cache, d)
    return model, float(loss.numpy()), logits.numpy().copy()


class TestParallelLinears:
    def test_column_parallel_concat_equals_serial(self):
        x = np.random.default_rng(0).standard_normal((3, 8))

        def fn(ctx):
            rng = np.random.default_rng(5)
            col = ColumnParallelLinear("c", 8, 6, ctx.world, ctx.rank,
                                       dtype=np.float64, rng=rng)
            y, _ = col.forward(Tensor.from_numpy(x), CTX)
            return y.numpy()

        rng = np.random.default_rng(5)
        serial = Linear("c", 8, 6, dtype=np.float64, rng=rng)
        y_ref, _ = serial.forward(Tensor.from_numpy(x), CTX)
        parts = run_world(2, fn)
        np.testing.assert_allclose(np.concatenate(parts, axis=-1), y_ref.numpy(), rtol=1e-12)

    def test_row_parallel_sums_to_serial(self):
        x = np.random.default_rng(0).standard_normal((3, 8))

        def fn(ctx):
            rng = np.random.default_rng(5)
            row = RowParallelLinear("r", 8, 6, ctx.world, ctx.rank,
                                    dtype=np.float64, rng=rng)
            idx = ctx.world.group_index(ctx.rank)
            x_local = x[:, idx * 4 : (idx + 1) * 4]
            y, _ = row.forward(Tensor.from_numpy(x_local), CTX)
            return y.numpy()

        rng = np.random.default_rng(5)
        serial = Linear("r", 8, 6, dtype=np.float64, rng=rng)
        y_ref, _ = serial.forward(Tensor.from_numpy(x), CTX)
        for y in run_world(2, fn):
            np.testing.assert_allclose(y, y_ref.numpy(), rtol=1e-10)

    def test_divisibility_validated(self):
        def fn(ctx):
            rng = np.random.default_rng(0)
            with pytest.raises(ValueError):
                ColumnParallelLinear("c", 8, 7, ctx.world, ctx.rank,
                                     dtype=np.float32, rng=rng)
            with pytest.raises(ValueError):
                RowParallelLinear("r", 7, 8, ctx.world, ctx.rank,
                                  dtype=np.float32, rng=rng)
            return True

        assert all(run_world(2, fn))


class TestParallelModel:
    @pytest.mark.parametrize("mp", [2, 4])
    def test_loss_and_grads_match_serial(self, mp):
        ids = np.random.default_rng(0).integers(0, 64, (2, 8))
        tgt = np.random.default_rng(1).integers(0, 64, (2, 8))
        serial_model, serial_loss, _ = serial_reference(ids, tgt)
        serial_grads = {p.name: p.grad.numpy().copy() for p in serial_model.parameters()}

        def fn(ctx):
            rng = np.random.default_rng(3)
            model = ParallelGPT2Model(CFG, ctx.world, ctx.rank, dtype=np.float64, rng=rng)
            loss_head = model.make_loss_head()
            logits, cache = model.forward(Tensor.from_numpy(ids), CTX)
            loss, lcache = loss_head.forward(logits, Tensor.from_numpy(tgt))
            d = loss_head.backward(lcache)
            model.backward(cache, d)
            ln_grad = {p.name: p.grad.numpy().copy() for p in model.parameters()
                       if ".ln1." in p.name or ".ln_f." in p.name or ".emb." in p.name}
            return float(loss.numpy()), ln_grad

        for loss, ln_grads in run_world(mp, fn):
            assert loss == pytest.approx(serial_loss, rel=1e-9)
            for name, g in ln_grads.items():
                np.testing.assert_allclose(g, serial_grads[name], rtol=1e-7, atol=1e-10)

    def test_sharded_weight_grads_match_serial_slices(self):
        ids = np.random.default_rng(0).integers(0, 64, (2, 8))
        tgt = np.random.default_rng(1).integers(0, 64, (2, 8))
        serial_model, _, _ = serial_reference(ids, tgt)
        serial_grads = {p.name: p.grad.numpy().copy() for p in serial_model.parameters()}

        def fn(ctx):
            rng = np.random.default_rng(3)
            model = ParallelGPT2Model(CFG, ctx.world, ctx.rank, dtype=np.float64, rng=rng)
            loss_head = model.make_loss_head()
            logits, cache = model.forward(Tensor.from_numpy(ids), CTX)
            loss, lcache = loss_head.forward(logits, Tensor.from_numpy(tgt))
            model.backward(cache, loss_head.backward(lcache))
            return {p.name: p.grad.numpy().copy() for p in model.parameters()}

        grads0, grads1 = run_world(2, fn)
        # fc1 column-parallel: rank 0 holds the first half of output rows.
        full = serial_grads["gpt2.h0.mlp.fc1.weight"]
        np.testing.assert_allclose(grads0["gpt2.h0.mlp.fc1.weight"], full[:64], atol=1e-9)
        np.testing.assert_allclose(grads1["gpt2.h0.mlp.fc1.weight"], full[64:], atol=1e-9)
        # fc2 row-parallel: rank 0 holds the first half of input columns.
        full2 = serial_grads["gpt2.h0.mlp.fc2.weight"]
        np.testing.assert_allclose(grads0["gpt2.h0.mlp.fc2.weight"], full2[:, :64], atol=1e-9)

    def test_attention_head_split_matches_serial(self):
        ids = np.random.default_rng(0).integers(0, 64, (2, 8))
        tgt = np.random.default_rng(1).integers(0, 64, (2, 8))
        serial_model, _, _ = serial_reference(ids, tgt)
        serial_grads = {p.name: p.grad.numpy().copy() for p in serial_model.parameters()}

        def fn(ctx):
            rng = np.random.default_rng(3)
            model = ParallelGPT2Model(CFG, ctx.world, ctx.rank, dtype=np.float64, rng=rng)
            loss_head = model.make_loss_head()
            logits, cache = model.forward(Tensor.from_numpy(ids), CTX)
            loss, lcache = loss_head.forward(logits, Tensor.from_numpy(tgt))
            model.backward(cache, loss_head.backward(lcache))
            return {p.name: p.grad.numpy().copy() for p in model.parameters()}

        grads0, _ = run_world(2, fn)
        h, nh, hd = 32, 4, 8
        rows = np.concatenate(
            [[c * h + head * hd + i for head in (0, 1) for i in range(hd)] for c in range(3)]
        )
        np.testing.assert_allclose(
            grads0["gpt2.h0.attn.qkv.weight"],
            serial_grads["gpt2.h0.attn.qkv.weight"][rows],
            atol=1e-9,
        )

    def test_mp_comm_pattern_two_allreduces_per_block_per_pass(self):
        ids = np.random.default_rng(0).integers(0, 64, (2, 8))

        def fn(ctx):
            rng = np.random.default_rng(3)
            model = ParallelGPT2Model(CFG, ctx.world, ctx.rank, dtype=np.float32, rng=rng)
            ctx.ledger.clear()
            logits, cache = model.forward(Tensor.from_numpy(ids), CTX)
            n_fwd = sum(1 for e in ctx.ledger.events if e.op == "all_reduce")
            cache.free()
            logits.free_if_alive()
            return n_fwd

        # Forward: 2 all-reduces per block (attn.proj + mlp.fc2).
        assert run_world(2, fn)[0] == 2 * CFG.n_layers

    def test_vocab_padding(self):
        cfg = GPTConfig(n_layers=1, hidden=16, n_heads=2, vocab_size=50257, max_seq_len=8)

        def fn(ctx):
            model = ParallelGPT2Model(cfg, ctx.world, ctx.rank, dtype=np.float16, meta=True)
            return model.head.padded_vocab, model.head.lm_head.out_local

        padded, local = run_world(2, fn)[0]
        assert padded == 50258 and local == 25129
