"""Section 9's compute-gap arithmetic, checked against the paper's prose."""

import pytest

from repro.analysis.compute_gap import (
    compute_scale_factor,
    required_sustained_flops,
    summarize_1t_gap,
    training_days_same_hardware,
)


def test_3000x_compute_multiple():
    # "A 1 Trillion Parameter model can easily contain 3000x more computation".
    assert compute_scale_factor(1e12) == pytest.approx(3030, rel=0.01)


def test_140_days_same_tokens():
    # "training a 1T model would take 140 days" at equal hardware/tokens.
    assert training_days_same_hardware(1e12) == pytest.approx(140, rel=0.01)


def test_over_a_year_with_scaled_data():
    # "likely to increase ... requiring over a year to train."
    assert training_days_same_hardware(1e12, data_scale=3.0) > 365


def test_exaflop_class_machine_needed():
    # "It would require an exa-flop system to train a 1T parameter model
    # in a reasonable time."
    summary = summarize_1t_gap()
    assert summary.exaflops_for_two_weeks > 0.4  # within reach only of exa-scale
    assert summary.days_same_tokens == pytest.approx(140, rel=0.01)


def test_required_flops_scales_inverse_with_deadline():
    f14 = required_sustained_flops(1e12, train_days=14, base_sustained_flops=4e16)
    f28 = required_sustained_flops(1e12, train_days=28, base_sustained_flops=4e16)
    assert f14 == pytest.approx(2 * f28)


def test_validation():
    with pytest.raises(ValueError):
        compute_scale_factor(-1)
    with pytest.raises(ValueError):
        required_sustained_flops(1e12, train_days=0, base_sustained_flops=1e15)
