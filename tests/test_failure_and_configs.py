"""Failure injection, paper-config label verification, checkpoint interval."""

import numpy as np
import pytest

from repro import Cluster, GPTConfig, ZeROConfig
from repro.analysis.memory_model import ActivationModel
from repro.configs import (
    TABLE5_FIGURE2,
    TABLE6_FIGURE3,
    TABLE10_FIGURE4_DP_ONLY,
)
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.memsim.errors import OutOfMemoryError
from repro.utils.units import GB
from repro.zero.factory import build_model_and_engine


class TestPaperConfigLabels:
    """Appendix Table 4/5 (layers, hidden) pairs must land near their
    advertised sizes — a consistency check of the whole sizing chain."""

    @pytest.mark.parametrize("point", TABLE5_FIGURE2, ids=lambda p: f"{p.label}-{p.system}")
    def test_table5_sizes(self, point):
        label_b = float(point.label.rstrip("B"))
        actual_b = point.model.total_params / 1e9
        assert actual_b == pytest.approx(label_b, rel=0.18), (point.label, actual_b)

    def test_table6_is_60b(self):
        for point in TABLE6_FIGURE3:
            assert point.model.total_params / 1e9 == pytest.approx(62, rel=0.05)

    def test_table10_dp_only_monotone(self):
        zero_points = [p for p in TABLE10_FIGURE4_DP_ONLY if p.system == "zero"]
        sizes = [p.model.total_params for p in zero_points]
        assert sizes == sorted(sizes)
        assert sizes[-1] / 1e9 == pytest.approx(13, rel=0.05)

    def test_total_batch_consistency(self):
        """total_batch == per-replica batch x DP degree for every row."""
        for point in TABLE5_FIGURE2 + TABLE6_FIGURE3:
            assert point.total_batch == point.batch * point.dp, point.label


class TestCheckpointInterval:
    def test_interval_halves_checkpoint_memory(self):
        one = ActivationModel(hidden=8192, n_layers=124, seq_len=1024, batch=32)
        two = ActivationModel(hidden=8192, n_layers=124, seq_len=1024, batch=32,
                              checkpoint_interval=2)
        assert one.checkpoint_bytes() == pytest.approx(2 * two.checkpoint_bytes())

    def test_paper_33gb_example_is_interval_two(self):
        act = ActivationModel(hidden=8192, n_layers=124, seq_len=1024, batch=32,
                              checkpoint_interval=2)
        assert act.checkpoint_bytes() / GB == pytest.approx(33, rel=0.05)

    def test_interval_grows_working_set(self):
        base = ActivationModel(hidden=1024, n_layers=8, seq_len=64, batch=2)
        wide = ActivationModel(hidden=1024, n_layers=8, seq_len=64, batch=2,
                               checkpoint_interval=4)
        assert wide.working_bytes() == pytest.approx(4 * base.working_bytes())

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            ActivationModel(hidden=8, n_layers=4, seq_len=8, batch=1,
                            checkpoint_interval=5)
        with pytest.raises(ValueError):
            ActivationModel(hidden=8, n_layers=4, seq_len=8, batch=1,
                            checkpoint_interval=0)


class TestFailureInjection:
    def test_oom_mid_training_propagates_cleanly(self):
        """A rank whose device genuinely cannot hold the step must raise
        OutOfMemoryError to the caller, releasing the other ranks."""
        tiny_gpu = GPUSpec("tiny", 3 * 10**6, 1e12)  # 3 MB: params fit, step won't
        cfg = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
        corpus = SyntheticCorpus(61, seed=7)
        cluster = Cluster(2, gpu=tiny_gpu, timeout_s=20.0)

        def fn(ctx):
            zero = ZeROConfig(stage=2, checkpoint_activations=False, memory_defrag=False)
            model, engine = build_model_and_engine(
                ctx, cfg, zero, dp_group=ctx.world, dtype=np.float32, seed=0,
            )
            ids, tgt = corpus.sample_batch(64, 16, rank=ctx.rank, step=0)
            engine.train_step(ids, tgt)

        with pytest.raises(OutOfMemoryError):
            cluster.run(fn)

    def test_rank_exception_does_not_hang_collectives(self):
        gpu = GPUSpec("t", 10**9, 1e12)
        cluster = Cluster(3, gpu=gpu, timeout_s=10.0)

        def fn(ctx):
            if ctx.rank == 1:
                raise KeyError("injected failure")
            # Peers are mid-collective when rank 1 dies.
            ctx.world.all_reduce(ctx.rank, np.ones(8, np.float32))

        with pytest.raises(KeyError, match="injected failure"):
            cluster.run(fn)

    def test_engine_survives_skipped_step_then_trains(self):
        """After an overflow-skipped step the engine must keep training
        (state intact, no leaked gradients)."""
        gpu = GPUSpec("t", 2 * 10**9, 1e12)
        cfg = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
        corpus = SyntheticCorpus(61, seed=7)
        cluster = Cluster(2, gpu=gpu, timeout_s=30.0)

        def fn(ctx):
            from repro.parallel.engine import EngineConfig

            zero = ZeROConfig(stage=2, checkpoint_activations=False, memory_defrag=False)
            model, engine = build_model_and_engine(
                ctx, cfg, zero, dp_group=ctx.world, dtype=np.float16, seed=0,
                engine_config=EngineConfig(loss_scale=2.0**22, dynamic_loss_scale=True),
            )
            outcomes = []
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                for step in range(10):
                    ids, tgt = corpus.sample_batch(2, 16, rank=ctx.rank, step=step)
                    outcomes.append(engine.train_step(ids, tgt).applied)
            return outcomes

        outcomes = cluster.run(fn)[0]
        assert outcomes[0] is False and True in outcomes
