"""Rollback-free recovery: buddy-shard redundancy -> fast resume.

Acceptance properties (ISSUE 9 / docs/ARCHITECTURE.md §15):

* A rank killed mid-run with redundancy enabled is recovered without
  touching the checkpoint ring: lost shards are fetched from buddy
  tiers, digest-verified, elastically re-sharded, and the run resumes
  at the last globally-completed optimizer boundary — the recovered
  trajectory is bitwise identical to a planned world-downsize at that
  step. No globally-completed step is ever re-lost.
* The same fault with redundancy disabled takes the classic
  checkpoint-ring path (``RestartKind.FAILURE``), losing steps back to
  the last durable checkpoint.
* A double fault that removes both a primary and its replica holder
  falls back to the ring (``RestartKind.RING_FALLBACK``) instead of
  failing the run.
* With redundancy off, behavior is byte-identical to a build without
  the layer: identical losses, identical comm schedule, zero extra
  ledger traffic.
* Under delayed parameter update the replica captures the stale fp16
  carry, so fast recovery preserves the one-step DPU lag bitwise.
"""

import numpy as np
import pytest

from repro import (
    BuddyStore,
    Cluster,
    FaultPlan,
    GPTConfig,
    RedundancyConfig,
    RestartKind,
    RestartPolicy,
    Supervisor,
    ZeROConfig,
    resume_from_buddies,
)
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.integrity.digest import fast_digest_array
from repro.optim.adam import AdamHyperparams
from repro.parallel.engine import EngineConfig
from repro.redundancy.store import SCALAR_KEYS, ShardSnapshot
from repro.restart import ALL_KINDS, counter_name, instant_name
from repro.supervisor import RestartEvent
from repro.zero.checkpoint_io import (
    latest_checkpoint,
    load_checkpoint_resharded,
    save_checkpoint,
)
from repro.zero.factory import build_model_and_engine

pytestmark = [pytest.mark.redundancy, pytest.mark.faults]

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)
TOTAL_STEPS = 6
CKPT_EVERY = 2


def build(ctx, stage, *, audit=0, offload=False, dpu=False):
    zero = ZeROConfig(
        stage=stage, checkpoint_activations=False, memory_defrag=False,
        audit_cadence=audit, offload_optimizer=offload,
        delayed_param_update=dpu,
    )
    return build_model_and_engine(
        ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
        engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
    )


def make_train_fn(root, stage, *, audit=0, offload=False, dpu=False,
                  lockstep=False):
    """Re-entrant training function with the fast-resume idiom: buddies
    first, checkpoint ring as the fallback. ``lockstep`` adds a world
    barrier after every step so no rank can outrun its peers' buddy
    refresh (turns the at-most-one-boundary skew into exactly zero)."""

    def train_fn(ctx):
        model, engine = build(ctx, stage, audit=audit, offload=offload, dpu=dpu)
        if not resume_from_buddies(engine):
            latest = latest_checkpoint(root)
            if latest is not None:
                load_checkpoint_resharded(engine, latest)
        losses = []
        for step in range(engine.step_count, TOTAL_STEPS):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            losses.append(engine.train_step(ids, tgt).loss)
            if engine.step_count % CKPT_EVERY == 0:
                save_checkpoint(engine, root / f"step{engine.step_count}")
            if lockstep:
                ctx.barrier()
        return losses, engine.opt_state.master.data.copy()

    return train_fn


def downsized_reference(stage, resumed_at, new_world, root, *, old_world=3,
                        offload=False, dpu=False):
    """The fast-recovery oracle: train ``old_world`` ranks fault-free to
    ``resumed_at``, checkpoint, re-shard to ``new_world`` ranks, finish.
    Determinism makes this the unique continuation the recovered run
    must reproduce bitwise."""

    def pre_fn(ctx):
        model, engine = build(ctx, stage, offload=offload, dpu=dpu)
        for step in range(resumed_at):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            engine.train_step(ids, tgt)
        save_checkpoint(engine, root / f"ref{resumed_at}")

    Cluster(old_world, gpu=GPU, timeout_s=15.0).run(pre_fn)

    def ref_fn(ctx):
        model, engine = build(ctx, stage, offload=offload, dpu=dpu)
        load_checkpoint_resharded(engine, root / f"ref{resumed_at}")
        losses = []
        for step in range(engine.step_count, TOTAL_STEPS):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            losses.append(engine.train_step(ids, tgt).loss)
        return losses, engine.opt_state.master.data.copy()

    return Cluster(new_world, gpu=GPU, timeout_s=15.0).run(ref_fn)


class _LossyStore(BuddyStore):
    """A buddy tier that silently loses the redundancy protecting ``lost``
    owners (replicas and parity blocks alike) — the deterministic stand-in
    for the owner-and-holder-die-together double fault."""

    def __init__(self, config, *, lost):
        super().__init__(config)
        self.lost = set(lost)

    def publish(self, snap):
        super().publish(snap)
        with self._lock:
            for by_owner in self._replicas.values():
                for owner in self.lost:
                    by_owner.pop(owner, None)
            for by_group in self._parity.values():
                for members in [m for m in by_group if self.lost & set(m)]:
                    by_group.pop(members)


# -- end-to-end: kill -> fast recovery -> bitwise resume ---------------------


class TestFastRecovery:
    @pytest.mark.parametrize("stage", [1, 2, 3])
    def test_kill_fast_recovers_bitwise(self, stage, tmp_path):
        """Acceptance: a rank killed at step 4 of 6 is recovered from its
        buddy's replica without the checkpoint ring; the survivors resume
        at the last globally-completed boundary and the trajectory equals
        a planned downsize at that step, bitwise."""
        root = tmp_path / "ckpts"
        plan = FaultPlan().kill_rank(1, at_step=4)
        sup = Supervisor(3, gpu=GPU, fault_plan=plan, timeout_s=15.0,
                         redundancy=RedundancyConfig())
        report = sup.run(make_train_fn(root, stage))

        assert report.restarts == 1
        assert report.final_world_size == 2
        (event,) = report.events
        assert event.kind == RestartKind.FAST_RECOVERY
        assert event.killed_ranks == (1,)

        # Thread scheduling decides whether the victim's peers finished
        # the boundary before the fabric abort; the resume step is the
        # last *globally completed* boundary, one of {kill-1, kill}.
        resumed_at = TOTAL_STEPS - len(report.results[0][0])
        assert resumed_at in (2, 3)

        ref = downsized_reference(stage, resumed_at, 2, tmp_path)
        for rank in range(2):
            assert report.results[rank][0] == ref[rank][0]
            np.testing.assert_array_equal(report.results[rank][1], ref[rank][1])

    def test_lockstep_kill_loses_zero_steps(self, tmp_path):
        """With a per-step barrier (no skew window) the resume step is
        exactly the boundary before the kill: zero completed steps lost,
        against a ring resume which would lose one (checkpoint at 2)."""
        root = tmp_path / "ckpts"
        plan = FaultPlan().kill_rank(1, at_step=4)
        sup = Supervisor(3, gpu=GPU, fault_plan=plan, timeout_s=15.0,
                         redundancy=RedundancyConfig())
        report = sup.run(make_train_fn(root, 2, lockstep=True))
        assert report.events[0].kind == RestartKind.FAST_RECOVERY
        resumed_at = TOTAL_STEPS - len(report.results[0][0])
        assert resumed_at == 3  # boundary 3 completed everywhere; step 3 was in flight
        ref = downsized_reference(2, resumed_at, 2, tmp_path)
        for rank in range(2):
            np.testing.assert_array_equal(report.results[rank][1], ref[rank][1])

    def test_redundancy_off_takes_ring_path(self, tmp_path):
        """Same fault, no redundancy: the classic elastic-recovery path
        (kind "failure"), resuming from the step-2 checkpoint."""
        root = tmp_path / "ckpts"
        plan = FaultPlan().kill_rank(1, at_step=4)
        sup = Supervisor(3, gpu=GPU, fault_plan=plan, timeout_s=15.0)
        report = sup.run(make_train_fn(root, 2))
        assert report.events[0].kind == RestartKind.FAILURE
        # Ring resume restarts at the last durable checkpoint: steps lost.
        resumed_at = TOTAL_STEPS - len(report.results[0][0])
        assert resumed_at == 2

    def test_double_fault_falls_back_to_ring(self, tmp_path):
        """A double fault — the victim's replica is gone too (holder died
        with it, or the buddy tier lost the bytes) — leaves no copy of the
        victim's shards: the supervisor detects the hole, invalidates the
        store, and falls back to the checkpoint ring with kind
        "ring-fallback". (Simultaneous owner+holder kills are racy to
        stage in the threaded fabric — see TestBuddyStore for the
        owner+holder death at store level — so the e2e uses a lossy
        buddy tier, the deterministic equivalent.)"""
        root = tmp_path / "ckpts"
        plan = FaultPlan().kill_rank(1, at_step=4)
        sup = Supervisor(3, gpu=GPU, fault_plan=plan, timeout_s=15.0,
                         redundancy=_LossyStore(RedundancyConfig(), lost={1}))
        report = sup.run(make_train_fn(root, 2))
        assert report.events[0].kind == RestartKind.RING_FALLBACK
        assert report.events[0].killed_ranks == (1,)
        assert report.final_world_size == 2
        resumed_at = TOTAL_STEPS - len(report.results[0][0])
        assert resumed_at == 2  # back to the step-2 checkpoint
        losses, _ = report.results[0]
        assert losses  # the shrunken world finished the run

    def test_corruption_fast_recovers_bitwise(self, tmp_path):
        """A detected scribble (SDC) with redundancy enabled resumes from
        the buddy snapshots instead of rolling back to the ring; nobody
        died, so the recovered run matches the fault-free run bitwise."""
        clean_root = tmp_path / "clean"
        clean = Supervisor(2, gpu=GPU, timeout_s=15.0).run(
            make_train_fn(clean_root, 2, audit=1)
        )
        assert clean.restarts == 0

        root = tmp_path / "ckpts"
        plan = FaultPlan(seed=11).scribble_tensor(rank=1, at_step=4, target="m")
        sup = Supervisor(2, gpu=GPU, fault_plan=plan, timeout_s=15.0,
                         redundancy=RedundancyConfig())
        report = sup.run(make_train_fn(root, 2, audit=1))
        assert report.restarts == 1
        (event,) = report.events
        assert event.kind == RestartKind.FAST_RECOVERY
        assert event.killed_ranks == ()
        assert "shard-digest" in event.error
        for rank in range(2):
            assert report.results[rank][0][-1] == clean.results[rank][0][-1]
            np.testing.assert_array_equal(
                report.results[rank][1], clean.results[rank][1]
            )


# -- delayed parameter update: the replica must carry the stale fp16 ---------


class TestDPUCarry:
    def test_snapshot_captures_stale_param16(self, tmp_path):
        """Under DPU the fp16 params served at step t are fp16(master at
        t-1); the buddy snapshot must carry that stale copy explicitly —
        rebuilding fp16 from the recovered master would silently collapse
        the lag and diverge from an uninterrupted DPU run."""
        store = BuddyStore(RedundancyConfig())

        def fn(ctx):
            model, engine = build(ctx, 2, offload=True, dpu=True)
            for step in range(3):
                ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
                engine.train_step(ids, tgt)
            return engine.opt_state.master.data.copy()

        cluster = Cluster(2, gpu=GPU, timeout_s=15.0, redundancy=store)
        masters = cluster.run(fn)
        for owner in (0, 1):
            snap = store._primary[owner][-1]
            assert "param16" in snap.shards
            lo, hi = snap.part_lo, snap.part_hi
            stale = snap.shards["param16"]
            # Stale means: NOT the cast of the just-updated master...
            current = masters[owner][lo:hi].astype(np.float32)
            assert not np.array_equal(stale, current)
            # ...but exactly the cast of the master one step back.
            prev = snap.shards["master"]  # refreshed same boundary
            assert stale.shape == prev.shape

    def test_dpu_corruption_fast_recovers_bitwise(self, tmp_path):
        """Same-world fast recovery under DPU must match a fault-free DPU
        run bitwise end-to-end — only possible if the resumed step serves
        the *stale* fp16 carry, not a rebuild from the recovered master.
        (A checkpoint-resume reference can't express this: checkpoint
        loads deliberately collapse the lag.)"""
        clean = Supervisor(2, gpu=GPU, timeout_s=15.0).run(
            make_train_fn(tmp_path / "clean", 2, audit=1, offload=True, dpu=True)
        )
        assert clean.restarts == 0
        plan = FaultPlan(seed=11).scribble_tensor(rank=1, at_step=4, target="m")
        sup = Supervisor(2, gpu=GPU, fault_plan=plan, timeout_s=15.0,
                         redundancy=RedundancyConfig())
        report = sup.run(
            make_train_fn(tmp_path / "ckpts", 2, audit=1, offload=True, dpu=True)
        )
        assert report.events[0].kind == RestartKind.FAST_RECOVERY
        for rank in range(2):
            assert report.results[rank][0][-1] == clean.results[rank][0][-1]
            np.testing.assert_array_equal(
                report.results[rank][1], clean.results[rank][1]
            )

    def test_dpu_kill_resume_serves_stale_params(self, tmp_path):
        """After a kill + elastic fast recovery, the params the model
        serves are the snapshot's stale carry — not the cast of the
        recovered master."""
        store = BuddyStore(RedundancyConfig())
        root = tmp_path / "ckpts"
        served = {}

        def train_fn(ctx):
            model, engine = build(ctx, 2, offload=True, dpu=True)
            if resume_from_buddies(engine):
                served[ctx.rank] = np.concatenate(
                    [p.data.numpy().reshape(-1) for p in model.parameters()]
                )
            else:
                latest = latest_checkpoint(root)
                if latest is not None:
                    load_checkpoint_resharded(engine, latest)
            for step in range(engine.step_count, TOTAL_STEPS):
                ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
                engine.train_step(ids, tgt)
                ctx.barrier()

        plan = FaultPlan().kill_rank(1, at_step=4)
        sup = Supervisor(3, gpu=GPU, fault_plan=plan, timeout_s=15.0,
                         redundancy=store)
        report = sup.run(train_fn)
        assert report.events[0].kind == RestartKind.FAST_RECOVERY
        pend = store.pending
        assert pend is not None and "param16" in pend.arrays
        for rank, full in served.items():
            n = len(full)
            np.testing.assert_array_equal(full, pend.arrays["param16"][:n])
            assert not np.array_equal(
                full, pend.arrays["master"][:n].astype(full.dtype)
            )


# -- erasure coding: XOR parity groups ---------------------------------------


class TestErasureCoding:
    def test_single_loss_reconstructed_from_parity(self, tmp_path):
        """scheme="ec" with group (0,1) and parity on rank 2: killing a
        group member recovers its shards by XOR-ing the parity block with
        the surviving member's primary, digest-verified, bitwise."""
        root = tmp_path / "ckpts"
        plan = FaultPlan().kill_rank(1, at_step=4)
        store = BuddyStore(RedundancyConfig(scheme="ec", group_size=2))
        sup = Supervisor(3, gpu=GPU, fault_plan=plan, timeout_s=15.0,
                         redundancy=store)
        report = sup.run(make_train_fn(root, 2, lockstep=True))
        assert report.events[0].kind == RestartKind.FAST_RECOVERY
        resumed_at = TOTAL_STEPS - len(report.results[0][0])
        assert resumed_at == 3
        ref = downsized_reference(2, resumed_at, 2, tmp_path)
        for rank in range(2):
            np.testing.assert_array_equal(report.results[rank][1], ref[rank][1])

    def test_parity_loss_falls_back(self, tmp_path):
        """XOR tolerates one loss per group; when the parity block is gone
        too (holder lost with the member), reconstruction is unsolvable
        -> ring fallback."""
        root = tmp_path / "ckpts"
        plan = FaultPlan().kill_rank(1, at_step=4)
        sup = Supervisor(
            3, gpu=GPU, fault_plan=plan, timeout_s=15.0,
            redundancy=_LossyStore(
                RedundancyConfig(scheme="ec", group_size=2), lost={1}
            ),
        )
        report = sup.run(make_train_fn(root, 2))
        assert report.events[0].kind == RestartKind.RING_FALLBACK
        assert report.final_world_size == 2


# -- the store, unit level ----------------------------------------------------


def _snap(owner, world, step, value, numel=8):
    arr = np.full(numel // world, float(value), dtype=np.float32)
    shards = {"master": arr, "m": arr * 0.5, "v": arr * 0.25}
    lo = owner * (numel // world)
    return ShardSnapshot(
        owner=owner, world_size=world, step=step, flat_numel=numel,
        flat_numel_unpadded=numel, engine_name="zero-dp",
        part_lo=lo, part_hi=lo + numel // world,
        shards=shards,
        scalars=dict(zip(SCALAR_KEYS, (step, step, 0, 1024.0, step, 0))),
        digests={k: fast_digest_array(v) for k, v in shards.items()},
    )


class TestBuddyStore:
    def test_tampered_replica_rejected_by_digest(self):
        """Bytes rotting on the buddy tier must not resurrect silently:
        a tampered replica fails digest verification, is counted, and the
        store falls back to an older intact snapshot."""
        store = BuddyStore(RedundancyConfig())
        for step in (1, 2):
            for owner in range(3):
                store.publish(_snap(owner, 3, step, value=step * 10 + owner,
                                    numel=12))
        # Owner 1 dies; its replica lives on rank 2. Tamper the newest.
        store.mark_dead([1])
        store._replicas[2][1][-1].shards["master"][0] += 1.0
        snap = store.prepare_recovery()
        assert snap is not None
        assert store.digest_rejections == 1
        assert snap.step == 1  # fell back past the tampered step-2 copy
        assert snap.sources[1] == "replica"

    def test_double_hole_yields_none(self):
        store = BuddyStore(RedundancyConfig())
        for owner in range(3):
            store.publish(_snap(owner, 3, 1, value=owner, numel=12))
        store.mark_dead([1, 2])  # rank 1's replica lived on rank 2
        assert store.prepare_recovery() is None

    def test_refresh_cadence_thins_history(self, tmp_path):
        """refresh_every=2 halves the refresh traffic: only even boundary
        steps are published."""
        store = BuddyStore(RedundancyConfig(refresh_every=2, keep=2))

        def fn(ctx):
            model, engine = build(ctx, 2)
            for step in range(4):
                ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
                engine.train_step(ids, tgt)

        Cluster(2, gpu=GPU, timeout_s=15.0, redundancy=store).run(fn)
        for owner in (0, 1):
            assert store.stored_steps(owner) == (2, 4)
            assert store.replica_steps(owner) == (2, 4)

    def test_world_change_invalidates_stale_snapshots(self):
        store = BuddyStore(RedundancyConfig())
        for owner in range(3):
            store.publish(_snap(owner, 3, 1, value=owner, numel=12))
        store.publish(_snap(0, 2, 1, value=9, numel=12))  # re-bound world
        assert store.stored_steps(1) == ()
        assert store.stored_steps(0) == (1,)


# -- cost accounting: the refresh is priced, off is free ---------------------


class TestCostAccounting:
    def test_refresh_traffic_on_ledger_and_pools(self):
        """Each boundary records one send (to the buddy), one recv (from
        the rank we host), and a d2h staging copy, all phase-labeled; the
        landing pool carries the replica residency."""
        store = BuddyStore(RedundancyConfig())
        grab = {}

        def fn(ctx):
            model, engine = build(ctx, 2)
            for step in range(3):
                ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
                engine.train_step(ids, tgt)
            grab[ctx.rank] = (
                [e for e in ctx.ledger.events if e.phase == "buddy-replicate"],
                engine.redundancy.replication_s,
                engine.redundancy.bytes_published,
                ctx.host.allocated_bytes,
            )

        Cluster(2, gpu=GPU, timeout_s=15.0, redundancy=store).run(fn)
        for rank in (0, 1):
            events, rep_s, published, host_bytes = grab[rank]
            by_op = {}
            for e in events:
                by_op.setdefault(e.op, []).append(e)
            assert len(by_op["send"]) == 3  # one per boundary
            assert len(by_op["recv"]) == 3
            assert len(by_op["d2h"]) == 3
            snap_bytes = store._primary[rank][-1].nbytes
            assert by_op["send"][-1].message_bytes == snap_bytes
            assert by_op["send"][-1].peer == (rank, 1 - rank)
            assert published == sum(e.message_bytes for e in by_op["send"])
            assert rep_s > 0.0
            # keep=2 histories of (own + hosted) snapshots parked on DRAM.
            assert host_bytes >= 2 * 2 * snap_bytes

    def test_disabled_is_byte_identical_and_free(self):
        """Redundancy off: no manager, no buddy traffic, and the training
        comm schedule is event-for-event identical to a run with the
        feature on — replication rides beside the step, never inside it."""
        def fn(ctx):
            model, engine = build(ctx, 2)
            losses = []
            for step in range(3):
                ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
                losses.append(engine.train_step(ids, tgt).loss)
            train_events = [
                e for e in ctx.ledger.events if e.phase != "buddy-replicate"
            ]
            buddy_events = len(ctx.ledger.events) - len(train_events)
            return (losses, engine.opt_state.master.data.copy(),
                    train_events, buddy_events, engine.redundancy is None)

        off = Cluster(2, gpu=GPU, timeout_s=15.0).run(fn)
        on = Cluster(2, gpu=GPU, timeout_s=15.0,
                     redundancy=BuddyStore(RedundancyConfig())).run(fn)
        for rank in (0, 1):
            assert off[rank][4] is True      # no manager materialized
            assert off[rank][3] == 0         # and zero buddy traffic
            assert on[rank][3] > 0
            assert off[rank][0] == on[rank][0]  # losses bitwise
            np.testing.assert_array_equal(off[rank][1], on[rank][1])
            assert off[rank][2] == on[rank][2]  # same training schedule


# -- the restart-kind taxonomy ------------------------------------------------


class TestRestartKinds:
    def test_constants_cover_the_taxonomy(self):
        assert RestartKind.FAST_RECOVERY in ALL_KINDS
        assert RestartKind.RING_FALLBACK in ALL_KINDS
        assert instant_name(RestartKind.FAILURE) == "supervisor-restart"
        assert instant_name(RestartKind.FAST_RECOVERY) == "supervisor-fast-recovery"
        assert counter_name(RestartKind.RING_FALLBACK) == "supervisor_ring_fallbacks"
        with pytest.raises(ValueError):
            instant_name("made-up")

    def test_restart_event_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            RestartEvent(
                attempt=1, world_before=2, world_after=2, killed_ranks=(),
                error="x", kind="definitely-not-a-kind",
            )
