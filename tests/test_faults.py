"""Fault injection: transient retry w/ backoff, escalation, kills, p2p faults.

All tests use short fabric timeouts and run under the conftest deadlock
guard — a fault path that hangs instead of raising fails the suite.
"""

import time

import numpy as np
import pytest

from repro.comm.fabric import FabricAbortedError
from repro.comm.faults import (
    FaultPlan,
    RankKilledError,
    RetryPolicy,
    TransientCollectiveFault,
)
from repro.hardware.specs import GPUSpec
from repro.runtime import Cluster

pytestmark = pytest.mark.faults

GPU = GPUSpec("t", 10**8, 1e12)
FAST_RETRY = RetryPolicy(max_attempts=5, base_backoff_s=0.001, max_backoff_s=0.01)


def make_cluster(n=2, *, plan=None, retry=FAST_RETRY, timeout_s=5.0):
    return Cluster(n, gpu=GPU, timeout_s=timeout_s, fault_plan=plan, retry_policy=retry)


# -- transient faults --------------------------------------------------------


def test_transient_fault_retried_result_identical():
    """Two injected transient failures are retried with backoff; the result
    is bitwise identical to a fault-free run and every retry is in the
    ledger."""

    def fn(ctx):
        return ctx.world.all_reduce(ctx.rank, np.full(4, ctx.rank + 1.0, np.float32))

    clean = make_cluster(2).run(fn)

    plan = FaultPlan().fail_collective(rank=1, op="all_reduce", times=2)
    cluster = make_cluster(2, plan=plan)
    faulty = cluster.run(fn)

    for r in range(2):
        np.testing.assert_array_equal(clean[r], faulty[r])
    retries = cluster.ledgers[1].retries
    assert [e.attempt for e in retries] == [1, 2]
    assert all(e.op == "all_reduce" and not e.gave_up for e in retries)
    assert retries[0].backoff_s > 0
    assert cluster.ledgers[0].retries == []
    # Volume accounting is unaffected: the collective is recorded once.
    assert len([e for e in cluster.ledgers[1].events if e.op == "all_reduce"]) == 1


def test_transient_backoff_is_exponential():
    plan = FaultPlan().fail_collective(rank=0, times=3)
    policy = RetryPolicy(max_attempts=5, base_backoff_s=0.004, max_backoff_s=1.0)
    cluster = make_cluster(2, plan=plan, retry=policy)
    cluster.run(lambda ctx: ctx.world.all_reduce(ctx.rank, np.ones(2, np.float32)))
    backoffs = [e.backoff_s for e in cluster.ledgers[0].retries]
    assert backoffs == [0.004, 0.008, 0.016]


def test_transient_fault_escalates_on_all_ranks():
    """A fault outlasting the retry budget aborts the fabric: every rank
    raises promptly, and the abandoned attempt is ledgered as gave_up."""
    plan = FaultPlan().fail_collective(rank=1, op="all_reduce", times=50)
    policy = RetryPolicy(max_attempts=2, base_backoff_s=0.001)
    cluster = make_cluster(2, plan=plan, retry=policy, timeout_s=5.0)

    t0 = time.monotonic()
    with pytest.raises(FabricAbortedError, match="failed permanently"):
        cluster.run(lambda ctx: ctx.world.all_reduce(ctx.rank, np.ones(2, np.float32)))
    assert time.monotonic() - t0 < 4.0  # released by abort, not timeout
    last = cluster.ledgers[1].retries[-1]
    assert last.gave_up and last.attempt == 2


def test_collective_deadline_escalates():
    """A per-collective deadline bounds total retry time even when the
    attempt budget would allow more."""
    plan = FaultPlan().fail_collective(rank=0, times=50)
    policy = RetryPolicy(
        max_attempts=10_000, base_backoff_s=0.05, backoff_multiplier=1.0,
        max_backoff_s=0.05, deadline_s=0.2,
    )
    cluster = make_cluster(2, plan=plan, retry=policy)
    t0 = time.monotonic()
    with pytest.raises(FabricAbortedError, match="failed permanently"):
        cluster.run(lambda ctx: ctx.world.all_reduce(ctx.rank, np.ones(2, np.float32)))
    assert time.monotonic() - t0 < 2.0


def test_random_transients_deterministic_across_runs():
    """Seeded random injection produces the identical fault sequence on
    repeated runs, regardless of thread interleaving."""

    def fn(ctx):
        for _ in range(10):
            ctx.world.all_reduce(ctx.rank, np.ones(2, np.float32))
        return True

    def trace(seed):
        plan = FaultPlan(seed=seed).fail_randomly(prob=0.3, max_faults=6)
        cluster = make_cluster(2, plan=plan)
        assert cluster.run(fn) == [True, True]
        return [
            [(e.op, e.attempt) for e in cluster.ledgers[r].retries] for r in range(2)
        ]

    first, second = trace(seed=11), trace(seed=11)
    assert first == second
    assert sum(len(t) for t in first) > 0  # the plan actually injected faults
    assert trace(seed=12) != first  # and the seed matters


# -- permanent kills ---------------------------------------------------------


def test_kill_after_collectives_aborts_world():
    plan = FaultPlan().kill_rank(2, after_collectives=3)
    cluster = make_cluster(4, plan=plan)

    def fn(ctx):
        for _ in range(10):
            ctx.world.all_reduce(ctx.rank, np.ones(2, np.float32))

    with pytest.raises(RankKilledError, match="rank 2"):
        cluster.run(fn)
    assert plan.killed_ranks == [2]
    assert any(e.kind == "kill" for e in plan.events)


def test_kill_rule_fires_once():
    """A consumed kill rule must not re-fire on a restarted world."""
    plan = FaultPlan().kill_rank(0, after_collectives=1)

    def fn(ctx):
        for _ in range(3):
            ctx.world.all_reduce(ctx.rank, np.ones(2, np.float32))
        return True

    with pytest.raises(RankKilledError):
        make_cluster(2, plan=plan).run(fn)
    # Same plan, fresh cluster: the rule is spent, the run completes.
    assert make_cluster(2, plan=plan).run(fn) == [True, True]
    assert plan.killed_ranks == [0]


# -- point-to-point faults ---------------------------------------------------


def test_dropped_send_aborts_all_ranks_fast():
    """A dropped message times out the receiver, which aborts the fabric so
    the sender (blocked in a later collective) fails fast too."""
    plan = FaultPlan().drop_send(src=0, dst=1)
    cluster = make_cluster(2, plan=plan, timeout_s=0.4)

    def fn(ctx):
        if ctx.rank == 0:
            ctx.world.send(0, dst=1, array=np.ones(3, np.float32), tag=1)
            ctx.world.barrier(0)
        else:
            ctx.world.recv(1, src=0, tag=1)
            ctx.world.barrier(1)

    t0 = time.monotonic()
    with pytest.raises(FabricAbortedError):
        cluster.run(fn)
    # One recv timeout (0.4 s) releases everyone; nobody waits out a second.
    assert time.monotonic() - t0 < 2.0
    assert any(e.kind == "drop_send" for e in plan.events)


def test_delayed_send_still_delivers():
    plan = FaultPlan().delay_send(src=0, dst=1, delay_s=0.15)
    cluster = make_cluster(2, plan=plan, timeout_s=5.0)

    def fn(ctx):
        if ctx.rank == 0:
            ctx.world.send(0, dst=1, array=np.arange(4, dtype=np.float32), tag=3)
            return None
        return ctx.world.recv(1, src=0, tag=3)

    t0 = time.monotonic()
    out = cluster.run(fn)
    assert time.monotonic() - t0 >= 0.15
    np.testing.assert_array_equal(out[1], np.arange(4, dtype=np.float32))
    assert any(e.kind == "delay_send" for e in plan.events)


# -- plan construction -------------------------------------------------------


def test_plan_validation():
    with pytest.raises(ValueError, match="exactly one"):
        FaultPlan().kill_rank(0)
    with pytest.raises(ValueError, match="exactly one"):
        FaultPlan().kill_rank(0, at_step=1, after_collectives=1)
    with pytest.raises(ValueError):
        FaultPlan().fail_collective(nth=0)
    with pytest.raises(ValueError):
        FaultPlan().fail_randomly(prob=1.5)
    with pytest.raises(ValueError):
        FaultPlan().delay_send(src=0, delay_s=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


def test_no_plan_means_no_overhead_paths():
    """Without a plan the fault gates are skipped entirely — the default
    configuration behaves exactly as before this subsystem existed."""
    cluster = make_cluster(2, plan=None)
    out = cluster.run(lambda ctx: ctx.world.all_reduce(ctx.rank, np.ones(2, np.float32)))
    np.testing.assert_array_equal(out[0], np.full(2, 2.0, np.float32))
    assert cluster.ledgers[0].retries == []


def test_transient_fault_exception_direct():
    plan = FaultPlan().fail_collective(rank=0, op="all_gather")
    with pytest.raises(TransientCollectiveFault):
        plan.on_collective(0, "all_gather", (0, 1))
    plan.on_collective(0, "all_gather", (0, 1))  # consumed: passes now
