"""Unit helpers: byte/param/FLOP formatting and conversion."""

import pytest

from repro.utils.units import (
    BILLION,
    GB,
    TB,
    TFLOP,
    TRILLION,
    bytes_to_gb,
    bytes_to_str,
    flops_to_str,
    gb_to_bytes,
    params_to_str,
)


def test_paper_gb_convention_is_decimal():
    # 16 bytes x 7.5B params must read as the paper's "120 GB".
    assert bytes_to_gb(16 * 7.5 * BILLION) == pytest.approx(120.0)


def test_gb_roundtrip():
    assert bytes_to_gb(gb_to_bytes(31.4)) == pytest.approx(31.4)


def test_trillion_parameter_adam_footprint():
    # Section 1: a 1T-parameter model with Adam in 16-bit needs ~16 TB.
    assert 16 * TRILLION / TB == pytest.approx(16.0)


@pytest.mark.parametrize(
    "n, expected",
    [
        (7.5e9, "7.5B"),
        (1e12, "1T"),
        (1.5e9, "1.5B"),
        (330e6, "330M"),
        (17e9, "17B"),
        (999, "999"),
        (1000, "1K"),
    ],
)
def test_params_to_str(n, expected):
    assert params_to_str(n) == expected


@pytest.mark.parametrize(
    "n, expected",
    [
        (120 * GB, "120.00 GB"),
        (16 * TB, "16.00 TB"),
        (1.5e6, "1.50 MB"),
        (512, "512 B"),
    ],
)
def test_bytes_to_str(n, expected):
    assert bytes_to_str(n) == expected


def test_flops_to_str_petaflops():
    assert flops_to_str(15e15) == "15.00 PFlops"
    assert flops_to_str(38 * TFLOP) == "38.00 TFlops"
    assert flops_to_str(5e9) == "5.00 GFlops"
