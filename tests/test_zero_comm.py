"""Section 7 communication volumes, measured from the per-rank ledger."""

import numpy as np
import pytest

from repro import Cluster, GPTConfig, ZeROConfig
from repro.comm.ledger import exact_ring_factor
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.parallel.engine import EngineConfig
from repro.tensor.tensor import Tensor
from repro.zero.factory import build_model_and_engine

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)

EXPECTED_PSI = {0: 2.0, 1: 2.0, 2: 2.0, 3: 3.0}


def measure(stage, *, meta=False, world=4, bucket=1500):
    cluster = Cluster(world, gpu=GPU, timeout_s=60.0)

    def fn(ctx):
        zero = ZeROConfig(stage=stage, checkpoint_activations=True, memory_defrag=False)
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, dtype=np.float16, seed=0, meta=meta,
            engine_config=EngineConfig(bucket_numel=bucket),
        )
        ctx.ledger.clear()
        if meta:
            ids = Tensor.meta((2, 16), np.int64, device=ctx.device)
            tgt = Tensor.meta((2, 16), np.int64, device=ctx.device)
            engine.train_step(ids, tgt)
        else:
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=0)
            engine.train_step(ids, tgt)
        psi_bytes = engine.layout.numel * 2
        return (
            ctx.ledger.nominal_bytes() / psi_bytes,
            {k: v / psi_bytes for k, v in ctx.ledger.by_phase().items()},
        )

    return cluster.run(fn)


@pytest.mark.parametrize("stage", [0, 1, 2, 3])
def test_nominal_volume_matches_paper(stage):
    for volume, _ in measure(stage):
        assert volume == pytest.approx(EXPECTED_PSI[stage], abs=1e-9)


@pytest.mark.parametrize("stage", [0, 1, 2, 3])
def test_meta_mode_volume_identical_to_real(stage):
    real = measure(stage, meta=False)
    meta = measure(stage, meta=True)
    for (rv, rp), (mv, mp_) in zip(real, meta):
        assert rv == pytest.approx(mv)
        assert set(rp) == set(mp_)


def test_stage2_breakdown_is_reduce_plus_allgather():
    _, phases = measure(2)[0]
    assert phases["grad-reduce"] == pytest.approx(1.0)
    assert phases["param-allgather"] == pytest.approx(1.0)


def test_stage3_breakdown_is_two_gathers_plus_reduce():
    _, phases = measure(3)[0]
    assert phases["param-gather"] == pytest.approx(2.0)  # forward + backward
    assert phases["grad-reduce"] == pytest.approx(1.0)
    assert "param-allgather" not in phases  # no end-of-step gather


def test_stage0_is_pure_allreduce():
    _, phases = measure(0)[0]
    assert set(phases) == {"grad-allreduce"}
    assert phases["grad-allreduce"] == pytest.approx(2.0)


@pytest.mark.parametrize("bucket", [500, 5000])
def test_volume_independent_of_bucket_size(bucket):
    for volume, _ in measure(2, bucket=bucket):
        assert volume == pytest.approx(2.0)


def test_volume_independent_of_world_size():
    for world in (2, 4):
        for volume, _ in measure(2, world=world):
            assert volume == pytest.approx(2.0)


def test_exact_ring_volume_scales_with_group():
    """Exact wire bytes carry the (N-1)/N ring factor the paper drops."""
    cluster = Cluster(4, gpu=GPU, timeout_s=60.0)

    def fn(ctx):
        zero = ZeROConfig(stage=0, checkpoint_activations=True, memory_defrag=False)
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, dtype=np.float16, seed=0,
        )
        ctx.ledger.clear()
        ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=0)
        engine.train_step(ids, tgt)
        return ctx.ledger.exact_bytes() / ctx.ledger.nominal_bytes()

    ratio = cluster.run(fn)[0]
    assert ratio == pytest.approx(exact_ring_factor("all_reduce", 4) / 2.0)
