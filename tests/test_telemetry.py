"""Unified telemetry: span tracer, metrics registry, Chrome-trace export.

Acceptance properties (docs/ARCHITECTURE.md §9):

* A stage-2 meta-mode run with telemetry exports a Chrome trace whose
  summed span durations agree with the ledger-driven ``analysis.sim_time``
  step-time estimate within 5% (in fact: exactly, by construction — both
  price the same events with the same cost model), and whose per-phase
  nominal comm bytes match ``CommLedger.by_phase()`` exactly.
* With telemetry disabled, the engines allocate no tracer objects and
  record nothing.
* Exported traces are structurally valid: JSON-shaped, per-track
  monotonic timestamps, matched B/E pairs.
* ``RetryEvent``s reach telemetry even while the ledger's volume
  accounting is disabled, and ``gave_up`` escalations appear as instant
  events and registry counters.
"""

import json

import numpy as np
import pytest

from repro.analysis.perf_model import transformer_flops_per_replica
from repro.analysis.sim_time import LedgerTimeEstimator
from repro.comm.fabric import FabricAbortedError
from repro.comm.faults import FaultPlan, RetryPolicy
from repro.hardware.specs import GPUSpec
from repro.memsim.device import Device
from repro.memsim.timeline import MemoryTimeline
from repro.nn.transformer import GPTConfig
from repro.runtime import Cluster, virtual_rank_context
from repro.supervisor import Supervisor
from repro.telemetry import (
    MetricsRegistry,
    TelemetrySession,
    Tracer,
    validate_chrome_trace,
    validate_metrics_jsonl,
)
from repro.zero.config import ZeROConfig
from repro.zero.factory import build_engine, build_model_and_engine

pytestmark = pytest.mark.telemetry

GPU = GPUSpec("telemetry-gpu", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=64, n_heads=4, vocab_size=128, max_seq_len=32)
WORLD = 4
STEPS = 3
BATCH, SEQ = 2, 16


def run_meta_stage2(session, *, steps=STEPS, zero=None):
    """Stage-2 meta-mode training on a telemetry-attached cluster; returns
    (cluster, per-rank ledgers)."""
    cluster = Cluster(WORLD, gpu=GPU, telemetry=session)
    zero = zero or ZeROConfig(stage=2, checkpoint_activations=False,
                              memory_defrag=False)

    def fn(ctx):
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, meta=True, seed=0,
        )
        ids = np.zeros((BATCH, SEQ), dtype=np.int64)
        for _ in range(steps):
            engine.train_step(ids, ids)
        return ctx.ledger

    return cluster, cluster.run(fn)


# -- acceptance: trace agrees with sim_time + ledger ------------------------


class TestAcceptance:
    def test_span_durations_match_sim_time_within_5pct(self):
        session = TelemetrySession()
        cluster, ledgers = run_meta_stage2(session)
        flops = STEPS * transformer_flops_per_replica(
            CFG, BATCH, SEQ, checkpointing=False
        )
        est = LedgerTimeEstimator(cluster.topology, gpu=GPU)
        for rank in range(WORLD):
            tracer = session.tracers[rank]
            assert len(tracer.step_durations) == STEPS
            traced = sum(tracer.step_durations)
            expected = est.estimate(
                ledgers[rank], flops_per_gpu=flops, hidden=CFG.hidden
            ).total_s
            assert traced == pytest.approx(expected, rel=0.05)

    def test_per_phase_comm_bytes_match_ledger_exactly(self):
        session = TelemetrySession()
        _, ledgers = run_meta_stage2(session)
        for rank in range(WORLD):
            tracer = session.tracers[rank]
            assert tracer.comm_bytes_by_phase() == ledgers[rank].by_phase()
            assert tracer.comm_bytes_by_op() == ledgers[rank].by_op()

    def test_exported_trace_is_valid_and_loadable(self, tmp_path):
        session = TelemetrySession()
        run_meta_stage2(session)
        path = tmp_path / "trace.json"
        session.write_chrome_trace(path)
        text = path.read_text()
        validate_chrome_trace(text)  # valid JSON + invariants, from disk
        trace = json.loads(text)
        ranks = {ev["pid"] for ev in trace["traceEvents"]}
        assert ranks == set(range(WORLD))
        names = {ev["name"] for ev in trace["traceEvents"] if ev["ph"] == "B"}
        assert {"step", "forward", "backward", "grad-reduce", "optimizer",
                "param-allgather"} <= names
        counters = {ev["name"] for ev in trace["traceEvents"] if ev["ph"] == "C"}
        assert {"allocated_bytes", "comm_nominal_bytes"} <= counters

    def test_summary_table_renders_per_step_rows(self):
        session = TelemetrySession()
        run_meta_stage2(session)
        text = session.summary()
        for needle in ("forward (ms)", "backward (ms)", "grad-reduce (ms)",
                       "optimizer (ms)", "comm volume", "straggler",
                       "comm volume by op"):
            assert needle in text
        # One row per step plus header/rule/footer.
        assert sum(line.strip().startswith(str(s)) for s in range(STEPS)
                   for line in text.splitlines()) >= STEPS

    def test_step_time_histogram_aggregates_across_ranks(self):
        session = TelemetrySession()
        run_meta_stage2(session)
        stats = session.registry.aggregate("step_time_s")
        assert stats.count == WORLD * STEPS
        assert 0 < stats.minimum <= stats.maximum
        # Mean compares up to float summation error.
        assert stats.minimum <= stats.mean * (1 + 1e-12)
        assert stats.mean <= stats.maximum * (1 + 1e-12)
        assert stats.minimum <= stats.p95 <= stats.maximum


# -- disabled = zero overhead ------------------------------------------------


class TestDisabled:
    def test_no_tracer_objects_without_session(self):
        cluster = Cluster(2, gpu=GPU)
        zero = ZeROConfig(stage=2, checkpoint_activations=False,
                          memory_defrag=False)

        def fn(ctx):
            model, engine = build_model_and_engine(
                ctx, CFG, zero, dp_group=ctx.world, meta=True, seed=0,
            )
            ids = np.zeros((2, 16), dtype=np.int64)
            engine.train_step(ids, ids)
            return ctx.tracer, engine.tracer, ctx.ledger.listener

        for ctx_tracer, engine_tracer, listener in cluster.run(fn):
            assert ctx_tracer is None
            assert engine_tracer is None
            assert listener is None

    def test_zero_config_flag_defaults_off(self):
        assert ZeROConfig().telemetry is False
        ctx = virtual_rank_context(8, gpu=GPU)
        from repro.nn.transformer import GPT2Model

        model = GPT2Model(CFG, meta=True)
        engine = build_engine(ctx, model, ctx.world, ZeROConfig(stage=1))
        assert ctx.tracer is None and engine.tracer is None


# -- ZeROConfig(telemetry=True) standalone wiring ---------------------------


class TestConfigFlag:
    def test_flag_attaches_standalone_tracer(self):
        ctx = virtual_rank_context(8, gpu=GPU)
        zero = ZeROConfig(stage=2, telemetry=True, checkpoint_activations=False,
                          memory_defrag=False)
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, meta=True, seed=0,
        )
        assert engine.tracer is ctx.tracer is not None
        assert ctx.ledger.listener is ctx.tracer
        ids = np.zeros((2, 16), dtype=np.int64)
        engine.train_step(ids, ids)
        assert ctx.tracer.step_durations and ctx.tracer.step_durations[0] > 0
        assert ctx.tracer.comm_bytes_by_phase() == ctx.ledger.by_phase()
        stats = ctx.tracer.registry.aggregate("step_time_s")
        assert stats.count == 1

    def test_flag_respects_cluster_provided_tracer(self):
        session = TelemetrySession()
        cluster = Cluster(1, gpu=GPU, telemetry=session)

        def fn(ctx):
            from repro.nn.transformer import GPT2Model

            model = GPT2Model(CFG, meta=True)
            engine = build_engine(
                ctx, model, ctx.world, ZeROConfig(stage=1, telemetry=True)
            )
            return engine.tracer is session.tracers[0]

        assert cluster.run(fn) == [True]


# -- trace validation --------------------------------------------------------


class TestValidateChromeTrace:
    def test_rejects_invalid_json(self):
        with pytest.raises(json.JSONDecodeError):
            validate_chrome_trace("{not json")

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"foo": []})

    def test_rejects_backwards_timestamps(self):
        trace = {"traceEvents": [
            {"name": "a", "ph": "B", "pid": 0, "tid": 0, "ts": 5.0},
            {"name": "a", "ph": "E", "pid": 0, "tid": 0, "ts": 4.0},
        ]}
        with pytest.raises(ValueError, match="backwards"):
            validate_chrome_trace(trace)

    def test_rejects_mismatched_pairs(self):
        trace = {"traceEvents": [
            {"name": "a", "ph": "B", "pid": 0, "tid": 0, "ts": 0.0},
            {"name": "b", "ph": "E", "pid": 0, "tid": 0, "ts": 1.0},
        ]}
        with pytest.raises(ValueError, match="mismatched"):
            validate_chrome_trace(trace)

    def test_rejects_unclosed_begin(self):
        trace = {"traceEvents": [
            {"name": "a", "ph": "B", "pid": 0, "tid": 0, "ts": 0.0},
        ]}
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace(trace)

    def test_rejects_end_with_no_begin(self):
        trace = {"traceEvents": [
            {"name": "a", "ph": "E", "pid": 0, "tid": 0, "ts": 0.0},
        ]}
        with pytest.raises(ValueError, match="no open B"):
            validate_chrome_trace(trace)

    def test_accepts_counter_tracks_with_independent_clocks(self):
        # Counters are monotonic per (pid, tid, name), not interleaved.
        trace = {"traceEvents": [
            {"name": "x", "ph": "C", "pid": 0, "tid": 0, "ts": 5.0,
             "args": {"value": 1}},
            {"name": "y", "ph": "C", "pid": 0, "tid": 0, "ts": 1.0,
             "args": {"value": 2}},
        ]}
        validate_chrome_trace(trace)


# -- retry accounting --------------------------------------------------------


@pytest.mark.faults
class TestRetryTelemetry:
    def test_retries_recorded_while_ledger_disabled(self):
        """Control-plane collectives run with volume accounting off; their
        retries must still reach telemetry (the ledger's own contract)."""
        session = TelemetrySession()
        plan = FaultPlan().fail_collective(rank=1, op="all_reduce", times=2)
        cluster = Cluster(
            2, gpu=GPU, timeout_s=5.0, fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=5, base_backoff_s=0.001),
            telemetry=session,
        )

        def fn(ctx):
            ctx.ledger.enabled = False
            try:
                ctx.world.all_reduce(ctx.rank, np.ones(4, np.float32))
            finally:
                ctx.ledger.enabled = True
            return len(ctx.ledger.events)

        events_per_rank = cluster.run(fn)
        assert events_per_rank == [0, 0]  # no volume recorded...
        tracer = session.tracers[1]
        retries = [i for i in tracer.instants if i.name == "retry"]
        assert [i.args["attempt"] for i in retries] == [1, 2]
        assert all(i.args["op"] == "all_reduce" for i in retries)
        # ...but the retry counters did fire.
        counter = session.registry.counter("retries", rank=1, op="all_reduce")
        assert counter.value == 2
        assert session.tracers[0].instants == []

    def test_gave_up_escalation_visible_as_instant(self):
        session = TelemetrySession()
        plan = FaultPlan().fail_collective(rank=0, op="all_reduce", times=50)
        cluster = Cluster(
            2, gpu=GPU, timeout_s=5.0, fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=2, base_backoff_s=0.001),
            telemetry=session,
        )
        with pytest.raises(FabricAbortedError):
            cluster.run(
                lambda ctx: ctx.world.all_reduce(ctx.rank, np.ones(2, np.float32))
            )
        tracer = session.tracers[0]
        gave_up = [i for i in tracer.instants if i.name == "retry-gave-up"]
        assert len(gave_up) == 1
        assert gave_up[0].args["attempt"] == 2
        reg = session.registry
        assert reg.counter("retries_gave_up", rank=0, op="all_reduce").value == 1
        # Retry count includes the abandoned attempt.
        assert reg.counter("retries", rank=0, op="all_reduce").value == 2


# -- supervisor instants -----------------------------------------------------


@pytest.mark.faults
class TestSupervisorTelemetry:
    def test_restart_appears_as_global_instant(self):
        session = TelemetrySession()
        plan = FaultPlan().kill_rank(1, at_step=2)
        sup = Supervisor(3, gpu=GPU, fault_plan=plan, timeout_s=15.0,
                         telemetry=session)
        zero = ZeROConfig(stage=1, checkpoint_activations=False,
                          memory_defrag=False)

        def train_fn(ctx):
            model, engine = build_model_and_engine(
                ctx, CFG, zero, dp_group=ctx.world, meta=True, seed=0,
            )
            ids = np.zeros((2, 16), dtype=np.int64)
            for _ in range(3):
                engine.train_step(ids, ids)
            return engine.step_count

        report = sup.run(train_fn)
        assert report.restarts == 1
        restarts = [e for e in session.global_instants
                    if e.name == "supervisor-restart"]
        assert len(restarts) == 1
        assert restarts[0].args["world_before"] == 3
        assert restarts[0].args["world_after"] == 2
        assert restarts[0].args["killed_ranks"] == [1]
        # Crashed-attempt spans were unwound: the export is still valid.
        validate_chrome_trace(session.chrome_trace())

    def test_give_up_appears_as_global_instant(self):
        session = TelemetrySession()
        plan = FaultPlan().kill_rank(0, at_step=1)
        from repro.comm.faults import RankKilledError
        from repro.supervisor import RestartPolicy

        sup = Supervisor(
            2, gpu=GPU, fault_plan=plan, timeout_s=15.0,
            policy=RestartPolicy(max_restarts=0), telemetry=session,
        )
        zero = ZeROConfig(stage=1, checkpoint_activations=False,
                          memory_defrag=False)

        def train_fn(ctx):
            model, engine = build_model_and_engine(
                ctx, CFG, zero, dp_group=ctx.world, meta=True, seed=0,
            )
            ids = np.zeros((2, 16), dtype=np.int64)
            engine.train_step(ids, ids)

        with pytest.raises(RankKilledError):
            sup.run(train_fn)
        names = [e.name for e in session.global_instants]
        assert names == ["supervisor-gave-up"]


# -- SDC defense instants / counters -----------------------------------------


@pytest.mark.faults
@pytest.mark.sdc
class TestSdcTelemetry:
    def test_injection_detection_and_rollback_reach_the_trace(self, tmp_path):
        """A supervised rollback run leaves a complete SDC audit trail:
        injection and detection instants on the victim's track, audit and
        checkpoint-verification counters, and a supervisor-rollback global
        instant — all in a trace that still validates."""
        from repro import VerifiedCheckpointRing
        from repro.data import SyntheticCorpus
        from repro.zero.checkpoint_io import load_checkpoint_resharded

        session = TelemetrySession()
        corpus = SyntheticCorpus(CFG.vocab_size, seed=7)
        plan = FaultPlan(seed=11).scribble_tensor(rank=1, at_step=3, target="m")
        sup = Supervisor(2, gpu=GPU, fault_plan=plan, timeout_s=15.0,
                         telemetry=session)
        zero = ZeROConfig(stage=2, checkpoint_activations=False,
                          memory_defrag=False, audit_cadence=1)

        def train_fn(ctx):
            model, engine = build_model_and_engine(
                ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=0,
            )
            ring = VerifiedCheckpointRing(tmp_path / "ring", keep=2)
            latest = ring.latest_verified()
            if latest is not None:
                load_checkpoint_resharded(engine, latest)
            for step in range(engine.step_count, 4):
                ids, tgt = corpus.sample_batch(2, 16, rank=ctx.rank, step=step)
                engine.train_step(ids, tgt)
                if engine.step_count % 2 == 0:
                    ring.save(engine)
            return engine.step_count

        report = sup.run(train_fn)
        assert report.restarts == 1 and report.events[0].kind == "rollback"

        victim = session.tracers[1]
        instant_names = [i.name for i in victim.instants]
        assert "sdc-scribble" in instant_names
        assert "sdc-detected" in instant_names
        detected = next(i for i in victim.instants if i.name == "sdc-detected")
        assert detected.args["kind"] == "shard-digest"

        reg = session.registry
        assert reg.counter("sdc_injections", rank=1, kind="scribble").value == 1
        assert reg.counter("sdc_detections", rank=1, kind="shard-digest").value == 1
        assert reg.counter("supervisor_rollbacks").value == 1
        assert reg.counter("integrity_audits", rank=0, result="pass").value > 0
        assert reg.counter("ckpt_verifications", rank=0, result="pass").value > 0

        rollbacks = [e for e in session.global_instants
                     if e.name == "supervisor-rollback"]
        assert len(rollbacks) == 1
        assert rollbacks[0].args["kind"] == "rollback"
        assert rollbacks[0].args["world_after"] == 2

        trace = session.chrome_trace()
        validate_chrome_trace(trace)
        names = {ev["name"] for ev in trace["traceEvents"] if ev["ph"] == "i"}
        assert {"sdc-scribble", "sdc-detected", "supervisor-rollback",
                "ckpt-verified"} <= names


# -- offload side tracks -----------------------------------------------------


@pytest.mark.offload
class TestOffloadTrace:
    def test_pcie_and_host_lanes_exported_as_complete_events(self):
        session = TelemetrySession()
        zero = ZeROConfig(stage=2, offload_optimizer=True, offload_gradients=True,
                          checkpoint_activations=False, memory_defrag=False)
        run_meta_stage2(session, zero=zero)
        tracer = session.tracers[0]
        tracks = {s.track for s in tracer.timeline_spans}
        assert {"pcie-d2h", "pcie-h2d", "host"} <= tracks
        adam = [s for s in tracer.timeline_spans if s.name == "cpu-adam"]
        assert len(adam) == STEPS
        trace = session.chrome_trace()
        validate_chrome_trace(trace)
        x_names = {ev["name"] for ev in trace["traceEvents"] if ev["ph"] == "X"}
        assert {"d2h", "h2d", "cpu-adam"} <= x_names


# -- pipeline spans ----------------------------------------------------------


class TestPipelineTrace:
    def test_gpipe_emits_schedule_spans(self):
        from repro.parallel.pipeline import GPipeEngine

        session = TelemetrySession()
        cluster = Cluster(2, gpu=GPU, timeout_s=60.0, telemetry=session)

        def fn(ctx):
            engine = GPipeEngine(ctx, CFG, ctx.world, n_microbatches=2,
                                 dtype=np.float32, seed=0)
            ids = np.zeros((4, 16), dtype=np.int64)
            engine.train_step(ids, ids % CFG.vocab_size)

        cluster.run(fn)
        for rank in range(2):
            tracer = session.tracers[rank]
            names = [s.name for s in tracer.spans]
            assert names[:2] == ["step", "forward"]
            assert {"backward", "optimizer"} <= set(names)
            assert tracer.step_durations  # the step span closed
        validate_chrome_trace(session.chrome_trace())


# -- metrics registry --------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_are_keyed_by_labels(self):
        reg = MetricsRegistry()
        reg.counter("bytes", rank=0, phase="fwd").add(10)
        reg.counter("bytes", rank=0, phase="fwd").add(5)
        reg.counter("bytes", rank=1, phase="fwd").add(7)
        assert reg.counter("bytes", rank=0, phase="fwd").value == 15
        assert reg.counter("bytes", rank=1, phase="fwd").value == 7
        assert reg.aggregate("bytes").count == 2

    def test_gauge_set_max_keeps_peak(self):
        reg = MetricsRegistry()
        g = reg.gauge("peak", rank=0)
        g.set_max(5)
        g.set_max(3)  # lower watermark: ignored
        assert g.value == 5 and g.max_value == 5
        g.set(2)      # explicit set lowers value but not the peak
        assert g.value == 2 and g.max_value == 5

    def test_histogram_percentile(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(100) == 100.0

    def test_aggregate_filters_by_labels(self):
        reg = MetricsRegistry()
        reg.histogram("t", rank=0).observe(1.0)
        reg.histogram("t", rank=1).observe(3.0)
        assert reg.aggregate("t").mean == 2.0
        assert reg.aggregate("t", rank=1).mean == 3.0
        assert reg.aggregate("missing").count == 0

    def test_jsonl_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c", rank=0).add(2)
        reg.gauge("g", rank=0).set_max(7)
        reg.histogram("h", rank=0).observe(0.5)
        path = tmp_path / "metrics.jsonl"
        reg.write_jsonl(path)
        validate_metrics_jsonl(path.read_text())
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        by_name = {r["name"]: r for r in rows}
        assert by_name["c"]["value"] == 2
        assert by_name["c"]["labels"] == {"rank": "0"}
        assert by_name["c"]["schema"] == "metrics-v1"
        assert by_name["g"]["max"] == 7
        assert by_name["h"]["count"] == 1


# -- tracer unit behaviour ---------------------------------------------------


class TestTracer:
    def test_nested_spans_and_clock(self):
        tr = Tracer(0)
        tr.begin("step")
        tr.begin("forward")
        tr.advance(1.0)
        tr.end()
        tr.begin("backward")
        tr.advance(2.0)
        tr.end()
        tr.end()
        assert tr.step_durations == [3.0]
        assert tr.phase_times() == {"forward": 1.0, "backward": 2.0}
        assert [s.depth for s in tr.spans] == [0, 1, 1]

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError, match="no open span"):
            Tracer(0).end()

    def test_close_open_spans_unwinds_stack(self):
        tr = Tracer(0)
        tr.begin("step")
        tr.begin("forward")
        tr.advance(1.0)
        tr.close_open_spans()
        assert all(s.end_s is not None for s in tr.spans)
        assert tr.step_durations == [1.0]

    def test_span_context_manager_closes_on_exception(self):
        tr = Tracer(0)
        with pytest.raises(KeyError):
            with tr.span("step"):
                raise KeyError("boom")
        assert tr.spans[0].end_s is not None


# -- memory timeline satellites ----------------------------------------------


class TestMemoryTimelineSatellites:
    def test_context_manager_detaches(self):
        device = Device(GPU)
        orig_alloc = device.alloc
        with MemoryTimeline(device) as tl:
            ext = device.alloc(1024, "x")
            device.free(ext)
        assert device.alloc == orig_alloc
        assert len(tl.samples) == 2

    def test_context_manager_detaches_on_exception(self):
        device = Device(GPU)
        orig_alloc = device.alloc
        with pytest.raises(RuntimeError):
            with MemoryTimeline(device):
                raise RuntimeError("step blew up")
        assert device.alloc == orig_alloc

    def test_phase_peaks_normalizes_unlabelled(self):
        device = Device(GPU)
        with MemoryTimeline(device) as tl:
            a = device.alloc(1024, "pre")   # before any mark()
            tl.mark("forward")
            b = device.alloc(2048, "fwd")
            device.free(a)
            device.free(b)
        peaks = tl.phase_peaks()
        assert "(unlabelled)" in peaks and "" not in peaks
        assert peaks["forward"] >= peaks["(unlabelled)"]

    def test_ledger_by_phase_normalizes_unlabelled(self):
        from repro.comm.ledger import CommLedger

        ledger = CommLedger(rank=0)
        ledger.record("all_reduce", 100, (0, 1))          # no phase label
        ledger.record("all_gather", 50, (0, 1), phase="p")
        phases = ledger.by_phase()
        assert set(phases) == {"(unlabelled)", "p"}
        assert phases["(unlabelled)"] == 200.0  # 2x nominal factor

    def test_timeline_listener_feeds_tracer_counters(self):
        device = Device(GPU)
        tr = Tracer(0)
        with MemoryTimeline(device, listener=tr):
            ext = device.alloc(4096, "x")
            device.free(ext)
        allocated = [c for c in tr.counters if c.name == "allocated_bytes"]
        assert [c.value for c in allocated] == [4096.0, 0.0]
