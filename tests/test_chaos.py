"""Chaos soak: seeded mixed-fault campaigns against the Supervisor.

Acceptance (ISSUE 9): the Supervisor survives ten randomized campaigns
mixing rank kills, silent scribbles, checkpoint rot, transient
collective faults, and gray-failure perf rules — and *surviving* is not
the bar: with buddy redundancy every fault is either absorbed or
fast-recovered, so the survivors' final state must be bitwise identical
to a fault-free run that re-shards at the campaign's planned downsize
schedule. Any silent divergence (a lost step, a resurrected stale
shard, a collapsed DPU carry) fails the oracle.
"""

import numpy as np
import pytest

from repro import (
    Cluster,
    GPTConfig,
    RedundancyConfig,
    RestartKind,
    RestartPolicy,
    RetryPolicy,
    Supervisor,
    ZeROConfig,
    resume_from_buddies,
)
from repro.chaos import ChaosCampaign, generate_campaign
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.optim.adam import AdamHyperparams
from repro.parallel.engine import EngineConfig
from repro.zero.checkpoint_io import (
    latest_checkpoint,
    load_checkpoint_resharded,
    save_checkpoint,
)
from repro.zero.factory import build_model_and_engine

pytestmark = [pytest.mark.chaos, pytest.mark.faults]

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)
WORLD = 4
TOTAL_STEPS = 8
CKPT_EVERY = 2


def build(ctx):
    zero = ZeROConfig(stage=2, checkpoint_activations=False,
                      memory_defrag=False, audit_cadence=1)
    return build_model_and_engine(
        ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
        engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
    )


def make_train_fn(root):
    """Lock-step supervised training: buddies first, ring as fallback,
    checkpointing every CKPT_EVERY steps (rot rules need files to rot)."""

    def train_fn(ctx):
        model, engine = build(ctx)
        if not resume_from_buddies(engine):
            latest = latest_checkpoint(root)
            if latest is not None:
                load_checkpoint_resharded(engine, latest)
        losses = []
        for step in range(engine.step_count, TOTAL_STEPS):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            losses.append(engine.train_step(ids, tgt).loss)
            if engine.step_count % CKPT_EVERY == 0:
                save_checkpoint(engine, root / f"step{engine.step_count}")
            ctx.barrier()
        return losses, engine.opt_state.master.data.copy()

    return train_fn


def reference_final_state(campaign: ChaosCampaign, root):
    """The campaign's oracle: fault-free planned downsizes at exactly the
    schedule the kills force, resumed through checkpoint re-sharding."""

    def segment(world, load_from, until, save_to):
        def fn(ctx):
            model, engine = build(ctx)
            if load_from is not None:
                load_checkpoint_resharded(engine, load_from)
            losses = []
            for step in range(engine.step_count, until):
                ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
                losses.append(engine.train_step(ids, tgt).loss)
            if save_to is not None:
                save_checkpoint(engine, save_to)
            return losses, engine.opt_state.master.data.copy()

        return Cluster(world, gpu=GPU, timeout_s=15.0).run(fn)

    world = campaign.world
    load_from = None
    for i, (step, world_after) in enumerate(campaign.downsize_schedule()):
        save_to = root / f"ref{i}"
        segment(world, load_from, step, save_to)
        load_from, world = save_to, world_after
    return segment(world, load_from, campaign.total_steps, None)


@pytest.mark.parametrize("seed", range(10))
def test_campaign_survived_and_bitwise_identical(seed, tmp_path):
    campaign = generate_campaign(seed, world=WORLD, total_steps=TOTAL_STEPS)
    plan = campaign.build_plan()
    sup = Supervisor(
        campaign.world, gpu=GPU, fault_plan=plan, timeout_s=15.0,
        retry_policy=RetryPolicy(max_attempts=3, base_backoff_s=0.001),
        policy=RestartPolicy(max_restarts=8, quarantine_after=99),
        redundancy=RedundancyConfig(),
    )
    report = sup.run(make_train_fn(tmp_path / "ckpts"))

    assert report.restarts == campaign.expected_restarts, campaign.describe()
    assert report.final_world_size == campaign.final_world
    # Every restart this generator can provoke is buddy-servable.
    assert all(e.kind == RestartKind.FAST_RECOVERY for e in report.events), (
        campaign.describe(), [e.kind for e in report.events],
    )

    ref = reference_final_state(campaign, tmp_path)
    for rank in range(campaign.final_world):
        assert report.results[rank][0][-1] == ref[rank][0][-1], campaign.describe()
        np.testing.assert_array_equal(report.results[rank][1], ref[rank][1])


def test_generator_is_deterministic_and_survivable():
    """Same seed, same campaign; drawn compositions respect the
    survivability envelope the module promises."""
    for seed in range(25):
        a = generate_campaign(seed)
        assert a == generate_campaign(seed)
        kill_steps = [s for _, s in a.kills]
        assert kill_steps == sorted(kill_steps)
        assert len(set(kill_steps)) == len(kill_steps)
        scribble_steps = [s for _, s, _ in a.scribbles]
        assert not set(kill_steps) & set(scribble_steps)
        assert all(r == 0 for r, _, _ in a.scribbles)
        assert all(r >= 1 for r, _ in a.kills)
        assert a.final_world >= 2
        assert all(3 <= s <= a.total_steps for s in kill_steps + scribble_steps)
    # The sweep actually mixes families (not all-empty draws).
    drawn = [generate_campaign(s) for s in range(10)]
    assert any(c.kills for c in drawn)
    assert any(c.scribbles for c in drawn)
    assert any(c.perf_rules for c in drawn)
