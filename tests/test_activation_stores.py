"""ZeRO-R Pa / Pa+cpu activation stores: exact round-trips, memory shapes,
host accounting, and end-to-end equivalence under MP training."""

import numpy as np
import pytest

from repro import Cluster, GPTConfig
from repro.hardware.specs import GPUSpec
from repro.nn.checkpoint import KeepStore
from repro.nn.module import ExecutionContext
from repro.parallel.megatron import ParallelGPT2Model
from repro.tensor.tensor import Tensor
from repro.zero.activation import PartitionedCPUStore, PartitionedStore

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=64, max_seq_len=16)


def run_world(n, fn):
    return Cluster(n, gpu=GPU, timeout_s=60.0).run(fn)


class TestKeepStore:
    def test_stash_retrieve_same_tensor(self):
        store = KeepStore()
        t = Tensor.from_numpy(np.arange(4.0))
        handle = store.stash(t)
        assert store.retrieve(handle) is t
        assert store.returns_fresh_tensor is False
        store.discard(handle)
        assert t.freed


class TestPartitionedStore:
    def test_roundtrip_exact(self):
        payload = np.random.default_rng(0).standard_normal((2, 3, 8)).astype(np.float32)

        def fn(ctx):
            store = PartitionedStore(ctx.world, ctx)
            x = Tensor.from_numpy(payload.copy(), device=ctx.device)
            handle = store.stash(x)
            back = store.retrieve(handle)
            result = back.numpy().copy()
            back.free()
            store.discard(handle)
            return result

        for out in run_world(4, fn):
            np.testing.assert_array_equal(out, payload)

    def test_roundtrip_with_padding(self):
        # 2*3*5 = 30 elements does not divide by 4: padding path.
        payload = np.random.default_rng(1).standard_normal((2, 3, 5)).astype(np.float32)

        def fn(ctx):
            store = PartitionedStore(ctx.world, ctx)
            handle = store.stash(Tensor.from_numpy(payload.copy(), device=ctx.device))
            back = store.retrieve(handle)
            out = back.numpy().copy()
            back.free()
            store.discard(handle)
            return out

        for out in run_world(4, fn):
            np.testing.assert_array_equal(out, payload)

    def test_shard_memory_is_one_over_nm(self):
        def fn(ctx):
            store = PartitionedStore(ctx.world, ctx)
            before = ctx.device.allocated_bytes
            x = Tensor.from_numpy(np.zeros((4, 8, 8), np.float32), device=ctx.device)
            full = x.nbytes
            handle = store.stash(x)
            after = ctx.device.allocated_bytes
            store.discard(handle)
            return full, after - before

        for full, held in run_world(4, fn):
            assert held <= full // 4 + 512  # one shard plus alignment

    def test_stash_consumes_input(self):
        def fn(ctx):
            store = PartitionedStore(ctx.world, ctx)
            x = Tensor.from_numpy(np.zeros(16, np.float32), device=ctx.device)
            handle = store.stash(x)
            freed = x.freed
            store.discard(handle)
            return freed

        assert all(run_world(2, fn))

    def test_gather_volume_recorded(self):
        def fn(ctx):
            store = PartitionedStore(ctx.world, ctx)
            handle = store.stash(Tensor.from_numpy(np.zeros(64, np.float32), device=ctx.device))
            ctx.ledger.clear()
            store.retrieve(handle).free()
            store.discard(handle)
            return ctx.ledger.by_phase()

        phases = run_world(2, fn)[0]
        assert phases.get("activation-gather", 0) == 64 * 4  # nominal = message

    def test_meta_mode(self):
        def fn(ctx):
            store = PartitionedStore(ctx.world, ctx)
            x = Tensor.meta((4, 8), np.float16, device=ctx.device)
            handle = store.stash(x)
            back = store.retrieve(handle)
            ok = back.is_meta and back.shape == (4, 8)
            back.free()
            store.discard(handle)
            return ok

        assert all(run_world(2, fn))


class TestPartitionedCPUStore:
    def test_roundtrip_exact(self):
        payload = np.random.default_rng(2).standard_normal((2, 4, 4)).astype(np.float32)

        def fn(ctx):
            store = PartitionedCPUStore(ctx.world, ctx)
            handle = store.stash(Tensor.from_numpy(payload.copy(), device=ctx.device))
            back = store.retrieve(handle)
            out = back.numpy().copy()
            back.free()
            store.discard(handle)
            return out

        for out in run_world(2, fn):
            np.testing.assert_array_equal(out, payload)

    def test_device_memory_near_zero_between_passes(self):
        def fn(ctx):
            store = PartitionedCPUStore(ctx.world, ctx)
            before = ctx.device.allocated_bytes
            handle = store.stash(
                Tensor.from_numpy(np.zeros((8, 8), np.float32), device=ctx.device)
            )
            held_on_device = ctx.device.allocated_bytes - before
            held_on_host = ctx.host.allocated_bytes
            store.discard(handle)
            return held_on_device, held_on_host

        for on_device, on_host in run_world(2, fn):
            assert on_device == 0  # everything offloaded
            assert on_host > 0

    def test_host_freed_on_discard(self):
        def fn(ctx):
            store = PartitionedCPUStore(ctx.world, ctx)
            handle = store.stash(
                Tensor.from_numpy(np.zeros(64, np.float32), device=ctx.device)
            )
            store.discard(handle)
            return ctx.host.allocated_bytes

        assert run_world(2, fn) == [0, 0]

    def test_pcie_transfers_recorded(self):
        def fn(ctx):
            store = PartitionedCPUStore(ctx.world, ctx)
            ctx.ledger.clear()
            handle = store.stash(
                Tensor.from_numpy(np.zeros(64, np.float32), device=ctx.device)
            )
            store.retrieve(handle).free()
            store.discard(handle)
            return ctx.ledger.by_op()

        ops = run_world(2, fn)[0]
        shard_bytes = 64 * 4 // 2
        assert ops["d2h"] == shard_bytes
        assert ops["h2d"] == shard_bytes


class TestEndToEndWithMP:
    @pytest.mark.parametrize("store_kind", ["pa", "pa+cpu"])
    def test_pa_training_matches_keepstore(self, store_kind):
        """Partitioning checkpoints must not change a single gradient."""
        ids = np.random.default_rng(0).integers(0, 64, (2, 8))
        tgt = np.random.default_rng(1).integers(0, 64, (2, 8))

        def fn(ctx, kind):
            store = {
                "keep": lambda: KeepStore(),
                "pa": lambda: PartitionedStore(ctx.world, ctx),
                "pa+cpu": lambda: PartitionedCPUStore(ctx.world, ctx),
            }[kind]()
            rng = np.random.default_rng(0)
            model = ParallelGPT2Model(
                CFG, ctx.world, ctx.rank, dtype=np.float32, rng=rng,
                checkpoint_activations=True, activation_store=store,
            )
            loss_head = model.make_loss_head()
            logits, cache = model.forward(Tensor.from_numpy(ids), ExecutionContext())
            loss, lcache = loss_head.forward(logits, Tensor.from_numpy(tgt))
            d = loss_head.backward(lcache)
            model.backward(cache, d).free_if_alive()
            grads = {p.name: p.grad.numpy().copy() for p in model.parameters()}
            return float(loss.numpy()), grads

        ref = Cluster(2, gpu=GPU, timeout_s=60.0).run(lambda c: fn(c, "keep"))
        out = Cluster(2, gpu=GPU, timeout_s=60.0).run(lambda c: fn(c, store_kind))
        for (l0, g0), (l1, g1) in zip(ref, out):
            assert l0 == l1
            for name in g0:
                np.testing.assert_array_equal(g0[name], g1[name])
