"""The title claim: a trillion-parameter model fits 1024 x 32GB GPUs with
Pos+g+p — verified against the simulated allocator, not just the formula."""

import numpy as np
import pytest

from repro.comm.virtual import VirtualGroup
from repro.nn.transformer import GPTConfig
from repro.runtime import virtual_rank_context
from repro.tensor.tensor import Tensor
from repro.utils.units import GB
from repro.zero.config import ZeROConfig
from repro.zero.factory import build_model_and_engine

ONE_T = GPTConfig(n_layers=310, hidden=16384, n_heads=128)
N_GPUS, MP, BATCH = 1024, 16, 2


def run_1t_step():
    ctx = virtual_rank_context(N_GPUS)
    mp_group = VirtualGroup.of_size(MP, member_rank=0)
    mp_group.attach_ledger(0, ctx.ledger)
    dp_group = VirtualGroup(tuple(range(0, N_GPUS, MP)), member_rank=0)
    dp_group.attach_ledger(0, ctx.ledger)
    zero = ZeROConfig(stage=3, partition_activations=True, memory_defrag=False)
    model, engine = build_model_and_engine(
        ctx, ONE_T, zero, dp_group=dp_group, mp_group=mp_group,
        meta=True, defer_param_allocation=True,
    )
    ids = Tensor.meta((BATCH, 1024), np.int64, device=ctx.device)
    targets = Tensor.meta((BATCH, 1024), np.int64, device=ctx.device)
    ctx.ledger.clear()
    engine.train_step(ids, targets)
    return ctx, engine


@pytest.fixture(scope="module")
def one_t():
    return run_1t_step()


def test_model_is_a_trillion_parameters():
    assert ONE_T.total_params == pytest.approx(1e12, rel=0.01)


def test_fits_32gb_device(one_t):
    ctx, _ = one_t
    assert ctx.device.max_reserved_bytes < 32 * GB  # executed without OOM


def test_persistent_shards_match_table1(one_t):
    """Table 1: 1T at Nd=1024 (well, Psi/MP at Nd=64) -> 15.6 GB of states."""
    _, engine = one_t
    shards = (
        engine.param_shard.nbytes + engine.grad_shard.nbytes + engine.opt_state.nbytes
    )
    assert shards / GB == pytest.approx(15.6, rel=0.03)


def test_stage3_volume_holds_at_scale(one_t):
    ctx, engine = one_t
    psi_local_bytes = ONE_T.total_params / MP * 2
    dp_volume = ctx.ledger.nominal_bytes(phase="param-gather") + ctx.ledger.nominal_bytes(
        phase="grad-reduce"
    )
    # Vocab padding and the replicated-embedding share push a hair over 3x.
    assert dp_volume / psi_local_bytes == pytest.approx(3.0, rel=0.05)


def test_defer_requires_stage3():
    ctx = virtual_rank_context(8)
    dp_group = VirtualGroup.of_size(8, member_rank=0)
    dp_group.attach_ledger(0, ctx.ledger)
    with pytest.raises(ValueError, match="stage 3"):
        build_model_and_engine(
            ctx, GPTConfig(n_layers=1, hidden=64, n_heads=4, vocab_size=64,
                           max_seq_len=16),
            ZeROConfig(stage=2, memory_defrag=False),
            dp_group=dp_group, meta=True, defer_param_allocation=True,
        )


def test_deferred_numerics_unchanged():
    """defer_param_allocation changes accounting, never math: a real-mode
    stage-3 run with deferral matches the accounted run bitwise."""
    from repro import Cluster
    from repro.data import SyntheticCorpus
    from repro.hardware.specs import GPUSpec

    cfg = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
    corpus = SyntheticCorpus(61, seed=7)
    gpu = GPUSpec("t", 2 * 10**9, 1e12)

    def run(defer):
        cluster = Cluster(2, gpu=gpu, timeout_s=60.0)

        def fn(ctx):
            zero = ZeROConfig(stage=3, checkpoint_activations=False, memory_defrag=False)
            model, engine = build_model_and_engine(
                ctx, cfg, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
                defer_param_allocation=defer,
            )
            losses = []
            for step in range(2):
                ids, tgt = corpus.sample_batch(2, 16, rank=ctx.rank, step=step)
                losses.append(engine.train_step(ids, tgt).loss)
            return losses

        return cluster.run(fn)

    assert run(True) == run(False)
