"""Communication ledger accounting and the alpha-beta cost model."""

import numpy as np
import pytest

from repro.comm.costmodel import CommCostModel
from repro.comm.ledger import CommEvent, CommLedger, exact_ring_factor
from repro.comm.virtual import VirtualGroup
from repro.hardware.specs import GPUSpec
from repro.hardware.topology import ClusterTopology
from repro.runtime import Cluster

GPU = GPUSpec("t", 10**8, 1e12)


def event(op, nbytes, ranks=(0, 1, 2, 3)):
    return CommEvent(op=op, message_bytes=nbytes, group_size=len(ranks), group_ranks=ranks)


class TestLedger:
    def test_nominal_factors_match_paper_convention(self):
        # Section 7.1: reduce-scatter and all-gather each move ~Psi per rank.
        assert event("reduce_scatter", 100).nominal_bytes == 100
        assert event("all_gather", 100).nominal_bytes == 100
        assert event("all_reduce", 100).nominal_bytes == 200
        assert event("broadcast", 100).nominal_bytes == 100

    def test_exact_ring_factor(self):
        assert exact_ring_factor("all_reduce", 4) == pytest.approx(2 * 3 / 4)
        assert exact_ring_factor("all_gather", 4) == pytest.approx(3 / 4)
        assert exact_ring_factor("all_reduce", 1) == 0.0

    def test_record_and_aggregate(self):
        ledger = CommLedger(rank=0)
        ledger.record("all_reduce", 100, (0, 1), phase="grads")
        ledger.record("all_gather", 50, (0, 1), phase="params")
        assert ledger.nominal_bytes() == 250
        assert ledger.nominal_bytes(op="all_gather") == 50
        assert ledger.by_phase() == {"grads": 200.0, "params": 50.0}
        assert ledger.by_op() == {"all_reduce": 200.0, "all_gather": 50.0}
        ledger.clear()
        assert ledger.nominal_bytes() == 0

    def test_disabled_ledger_skips_recording(self):
        ledger = CommLedger(rank=0)
        ledger.enabled = False
        ledger.record("all_reduce", 100, (0, 1))
        assert not ledger.events

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            CommLedger(0).record("gossip", 1, (0, 1))

    def test_cluster_collectives_are_recorded(self):
        cluster = Cluster(2, gpu=GPU)

        def fn(ctx):
            ctx.world.all_reduce(ctx.rank, np.ones(100, np.float32), phase="x")
            return ctx.ledger.nominal_bytes(phase="x")

        assert cluster.run(fn) == [800.0, 800.0]  # 2 x 400 bytes


class TestVirtualGroup:
    def test_reports_any_size(self):
        g = VirtualGroup.of_size(1024)
        assert g.size == 1024
        assert g.group_index(0) == 0

    def test_meta_collective_records(self):
        g = VirtualGroup.of_size(64)
        ledger = CommLedger(0)
        g.attach_ledger(0, ledger)
        g.meta_collective(0, "reduce_scatter", 1000, "grads")
        assert ledger.nominal_bytes() == 1000
        assert ledger.events[0].group_size == 64

    def test_data_collectives_raise(self):
        g = VirtualGroup.of_size(8)
        with pytest.raises(RuntimeError, match="no peers"):
            g.all_reduce(0, np.ones(4))

    def test_strided_membership(self):
        g = VirtualGroup(tuple(range(0, 64, 16)), member_rank=0)
        assert g.size == 4
        assert g.group_index(48) == 3
        with pytest.raises(ValueError):
            g.group_index(5)

    def test_nonmember_rejected(self):
        with pytest.raises(ValueError):
            VirtualGroup((0, 16), member_rank=3)


class TestCostModel:
    def setup_method(self):
        self.topo = ClusterTopology.for_world_size(64)
        self.model = CommCostModel(self.topo)

    def test_intra_node_faster_than_inter_node(self):
        intra = self.model.event_time(event("all_reduce", 10**9, tuple(range(16))))
        inter = self.model.event_time(event("all_reduce", 10**9, tuple(range(0, 64, 16))))
        assert inter > intra * 10  # 300 vs 12.5 GB/s

    def test_allreduce_twice_reduce_scatter(self):
        ranks = tuple(range(16))
        ar = self.model.event_time(event("all_reduce", 10**9, ranks))
        rs = self.model.event_time(event("reduce_scatter", 10**9, ranks))
        assert ar == pytest.approx(2 * rs, rel=0.01)

    def test_single_rank_group_is_free(self):
        assert self.model.event_time(event("all_reduce", 10**9, (0,))) == 0.0

    def test_pcie_transfers(self):
        t = self.model.event_time(event("d2h", 12 * 10**9, (0,)))
        assert t == pytest.approx(1.0, rel=0.01)  # 12 GB over 12 GB/s

    def test_latency_term_dominates_tiny_messages(self):
        ranks = tuple(range(16))
        t_small = self.model.event_time(event("all_reduce", 8, ranks))
        assert t_small >= 2 * 15 * self.topo.node.intra_node.latency_s

    def test_total_time_sums(self):
        events = [event("all_gather", 1000), event("reduce_scatter", 1000)]
        total = self.model.total_time(events)
        assert total == pytest.approx(sum(self.model.event_time(e) for e in events))

    def test_unknown_op_raises(self):
        bad = CommEvent(op="all_reduce", message_bytes=1, group_size=2, group_ranks=(0, 1))
        object.__setattr__(bad, "op", "bogus")  # bypass the frozen dataclass
        with pytest.raises(ValueError):
            self.model.event_time(bad)
