"""Engine-level behaviours: CB fused buffers, dynamic loss scaling under
real fp16 overflow, bucket queue mechanics, config plumbing."""

import numpy as np
import pytest

from repro import Cluster, GPTConfig, ZeROConfig
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec
from repro.optim.adam import AdamHyperparams
from repro.parallel.ddp import GradBucketQueue
from repro.parallel.engine import EngineConfig
from repro.nn.layers import make_param
from repro.zero.config import C1, C2, C3, C4, C5, PAPER_CONFIGS
from repro.zero.factory import build_model_and_engine

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)


class TestGradBucketQueue:
    def _params(self, sizes):
        return [make_param(f"p{i}", (s,), init="zeros") for i, s in enumerate(sizes)]

    def test_flushes_at_threshold(self):
        flushed = []
        q = GradBucketQueue(10, flushed.append)
        params = self._params([4, 4, 4])
        q.on_grad_ready(params[0])
        q.on_grad_ready(params[1])
        assert flushed == []
        q.on_grad_ready(params[2])  # 12 >= 10
        assert len(flushed) == 1 and len(flushed[0]) == 3

    def test_none_threshold_only_flushes_manually(self):
        flushed = []
        q = GradBucketQueue(None, flushed.append)
        for p in self._params([100, 100]):
            q.on_grad_ready(p)
        assert flushed == []
        q.flush()
        assert len(flushed) == 1 and len(flushed[0]) == 2

    def test_flush_empty_is_noop(self):
        flushed = []
        GradBucketQueue(10, flushed.append).flush()
        assert flushed == []


class TestConstantBuffers:
    def _run(self, fused_numel):
        cluster = Cluster(2, gpu=GPU, timeout_s=60.0)

        def fn(ctx):
            zero = ZeROConfig(stage=0, checkpoint_activations=False,
                              memory_defrag=False, constant_buffers=False)
            model, engine = build_model_and_engine(
                ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=0,
                engine_config=EngineConfig(fused_buffer_numel=fused_numel),
            )
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=0)
            r = engine.train_step(ids, tgt)
            cb = engine._cb_buffer.nbytes if engine._cb_buffer is not None else None
            return r.loss, cb

        return cluster.run(fn)

    def test_cb_buffer_size_is_constant_config(self):
        results = self._run(4096)
        assert results[0][1] == 4096 * 4  # fp32 elements

    def test_no_cb_means_transient_full_buffer(self):
        results = self._run(None)
        assert results[0][1] is None

    def test_cb_chunking_changes_nothing_numerically(self):
        with_cb = self._run(128)  # many tiny chunks through the buffer
        without = self._run(None)
        assert with_cb[0][0] == without[0][0]

    def test_factory_wires_cb_from_zero_config(self):
        cluster = Cluster(2, gpu=GPU, timeout_s=60.0)

        def fn(ctx):
            zero = ZeROConfig(stage=1, constant_buffers=True,
                              constant_buffer_numel=2048, memory_defrag=False,
                              checkpoint_activations=False)
            model, engine = build_model_and_engine(
                ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=0,
            )
            return engine._cb_buffer.size

        assert cluster.run(fn) == [2048, 2048]


class TestDynamicLossScaling:
    # inf/NaN propagating through fp16 math is the *point* of this test.
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_overflow_skips_in_lockstep_and_recovers(self):
        """Force an fp16 overflow via a huge loss scale: all ranks must skip
        the same step, halve the scale, and keep training consistently."""
        cluster = Cluster(2, gpu=GPU, timeout_s=60.0)

        def fn(ctx):
            zero = ZeROConfig(stage=2, checkpoint_activations=False, memory_defrag=False)
            model, engine = build_model_and_engine(
                ctx, CFG, zero, dp_group=ctx.world, dtype=np.float16, seed=0,
                engine_config=EngineConfig(
                    adam=AdamHyperparams(lr=1e-3),
                    loss_scale=2.0**22,  # guarantees initial fp16 gradient overflow
                    dynamic_loss_scale=True,
                ),
            )
            applied = []
            scales = []
            for step in range(8):
                ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
                applied.append(engine.train_step(ids, tgt).applied)
                scales.append(engine.scaler.scale)
            return applied, scales

        results = cluster.run(fn)
        applied0, scales0 = results[0]
        assert applied0[0] is False  # first step skipped on overflow
        assert True in applied0  # scale backs off until steps apply
        assert scales0[-1] < 2.0**22
        assert results[1] == results[0]  # lockstep across ranks

    def test_static_scale_preserved(self):
        cluster = Cluster(2, gpu=GPU, timeout_s=60.0)

        def fn(ctx):
            zero = ZeROConfig(stage=0, checkpoint_activations=False, memory_defrag=False)
            model, engine = build_model_and_engine(
                ctx, CFG, zero, dp_group=ctx.world, dtype=np.float16, seed=0,
                engine_config=EngineConfig(loss_scale=128.0),
            )
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=0)
            engine.train_step(ids, tgt)
            return engine.scaler.scale

        assert cluster.run(fn) == [128.0, 128.0]


class TestZeROConfig:
    def test_paper_presets(self):
        assert C1.stage == 1 and not C1.partition_activations
        assert C2.stage == 1 and C2.partition_activations
        assert C3.stage == 2 and not C3.partition_activations
        assert C4.stage == 2 and C4.partition_activations
        assert C5.cpu_offload_activations
        assert list(PAPER_CONFIGS) == ["C1", "C2", "C3", "C4", "C5"]

    def test_labels(self):
        assert "Pos+g" in C4.label and "Pa" in C4.label
        assert "Pa+cpu" in C5.label

    def test_validation(self):
        with pytest.raises(ValueError):
            ZeROConfig(stage=7)
        with pytest.raises(ValueError):
            ZeROConfig(stage=2, cpu_offload_activations=True)  # Pa+cpu needs Pa

    def test_factory_rejects_pa_without_mp_group(self):
        cluster = Cluster(1, gpu=GPU)

        def fn(ctx):
            with pytest.raises(ValueError, match="MP group"):
                build_model_and_engine(
                    ctx, CFG, ZeROConfig(stage=2, partition_activations=True),
                    dp_group=ctx.world,
                )
            return True

        assert cluster.run(fn) == [True]


class TestEngineInputs:
    def test_numpy_inputs_freed_after_step(self):
        cluster = Cluster(2, gpu=GPU, timeout_s=60.0)

        def fn(ctx):
            zero = ZeROConfig(stage=2, checkpoint_activations=False, memory_defrag=False)
            model, engine = build_model_and_engine(
                ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=0,
            )
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=0)
            before = ctx.device.allocated_bytes
            engine.train_step(ids, tgt)
            engine.train_step(ids, tgt)
            after = ctx.device.allocated_bytes
            return after - before

        # Steady state: no growth between identical steps.
        assert cluster.run(fn) == [0, 0]

    def test_model_without_params_rejected(self):
        from repro.nn.module import Module
        from repro.parallel.ddp import DDPEngine

        cluster = Cluster(1, gpu=GPU)

        def fn(ctx):
            empty = Module("empty")
            with pytest.raises(ValueError, match="no parameters"):
                DDPEngine(ctx, empty, ctx.world)
            return True

        assert cluster.run(fn) == [True]
