"""ZeRO-Infinity: the tier moves, the math does not.

The infinity engine generalizes ZeRO-Offload's single host tier to a
device -> host DRAM -> NVMe hierarchy. Its core contract is unchanged:
tier placement (optimizer state, gradient shards, paged parameter shards,
memory-centric tiling) must leave the training trajectory bitwise
identical to the all-device engines at every stage; delayed parameter
update remains the single deliberate numeric change. Around that core:
byte accounting on all three pools, the per-tier stream/topology
machinery, the tiling plan, checkpoint round-trips that are
tier-independent, composition with fault injection / elastic recovery,
and the multi-tier closed-form cost model.
"""

import numpy as np
import pytest

from repro import Cluster, FaultPlan, GPTConfig, InfinityConfig, Supervisor, ZeROConfig
from repro.comm.ledger import CommLedger
from repro.data import SyntheticCorpus
from repro.hardware.specs import GPUSpec, InterconnectSpec
from repro.hardware.topology import ClusterTopology
from repro.infinity.tiers import Tier, TierStream, TierTopology, wire_seconds
from repro.infinity.tiling import TilePlan, plan_unit_tiles
from repro.offload.engine import OffloadConfig
from repro.optim.adam import AdamHyperparams
from repro.parallel.engine import EngineConfig
from repro.runtime import virtual_rank_context
from repro.tensor.tensor import Tensor
from repro.zero.checkpoint_io import (
    latest_checkpoint,
    load_checkpoint_resharded,
    save_checkpoint,
)
from repro.zero.factory import build_model_and_engine

pytestmark = pytest.mark.infinity

GPU = GPUSpec("t", 2 * 10**9, 1e12)
CFG = GPTConfig(n_layers=2, hidden=32, n_heads=4, vocab_size=61, max_seq_len=16)
CORPUS = SyntheticCorpus(61, seed=7)
STEPS = 4


def train_run(stage, *, world=2, steps=STEPS, **zero_kw):
    """Train a tiny model; return per-rank (losses, master, params,
    host_bytes, nvme_bytes, step_times)."""
    cluster = Cluster(world, gpu=GPU, timeout_s=60.0)

    def fn(ctx):
        zero = ZeROConfig(
            stage=stage, checkpoint_activations=False, memory_defrag=False, **zero_kw
        )
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
            engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
        )
        losses, times = [], []
        for step in range(steps):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            result = engine.train_step(ids, tgt)
            losses.append(result.loss)
            times.append(result.step_time_model_s)
        if stage == 3:
            params = engine.param_shard.data.copy()
        else:
            params = np.concatenate(
                [p.data.numpy().reshape(-1) for p in model.parameters()]
            )
        return (
            losses,
            engine.opt_state.master.data.copy(),
            params,
            ctx.host.allocated_bytes,
            ctx.nvme.allocated_bytes,
            times,
        )

    return cluster.run(fn)


@pytest.fixture(scope="module")
def all_device_baseline():
    """All-device reference trajectories, one per stage."""
    return {stage: train_run(stage) for stage in (1, 2, 3)}


# -- bitwise equivalence across tier placements (DPU off) ---------------------

PLACEMENTS = [
    (1, InfinityConfig(optimizer_tier="nvme", grad_tier="device")),
    (2, InfinityConfig(optimizer_tier="nvme", grad_tier="host")),
    (2, InfinityConfig(optimizer_tier="nvme", grad_tier="nvme")),
    (3, InfinityConfig(optimizer_tier="host", grad_tier="host", param_tier="host")),
    (3, InfinityConfig(optimizer_tier="nvme", grad_tier="nvme", param_tier="nvme")),
    (3, InfinityConfig(optimizer_tier="nvme", grad_tier="host", param_tier="nvme",
                       tile_bytes=1024)),
]


@pytest.mark.parametrize(
    "stage, inf", PLACEMENTS, ids=[f"s{s} {i.label}" for s, i in PLACEMENTS]
)
def test_infinity_bitwise_identical_to_all_device(stage, inf, all_device_baseline):
    """NVMe optimizer state, streamed gradients, paged parameter shards and
    tiled gathers change placement only — losses, master weights, and
    served parameters stay byte-identical."""
    run = train_run(stage, infinity=inf)
    ref = all_device_baseline[stage]
    for rank in range(2):
        assert run[rank][0] == ref[rank][0], f"rank {rank} losses diverged"
        np.testing.assert_array_equal(run[rank][1], ref[rank][1])
        np.testing.assert_array_equal(run[rank][2], ref[rank][2])


def test_infinity_places_state_on_tiers_and_reports_step_time(all_device_baseline):
    """The deepest placement parks bytes on the NVMe pool; the baseline
    never touches host or NVMe (zero overhead when disabled)."""
    inf = InfinityConfig(optimizer_tier="nvme", grad_tier="nvme", param_tier="nvme")
    run = train_run(3, infinity=inf)
    ref = all_device_baseline[3]
    for rank in range(2):
        # 12 B/elem Adam state per rank on NVMe, at least (shared pool).
        assert run[rank][4] >= 12 * len(run[rank][1]) * 2
        assert ref[rank][3] == 0 and ref[rank][4] == 0
        assert all(t > 0.0 for t in run[rank][5])  # tier timeline ran


# -- delayed parameter update over tiers: same staleness contract -------------


def test_dpu_staleness_contract_with_nvme_tiers():
    """One-step DPU composed with NVMe optimizer state + paged params:
    fp16 params after step t equal the cast of the master after t-1."""
    cluster = Cluster(2, gpu=GPU, timeout_s=60.0)

    def fn(ctx):
        zero = ZeROConfig(
            stage=3, checkpoint_activations=False, memory_defrag=False,
            infinity=InfinityConfig(
                optimizer_tier="nvme", grad_tier="host", param_tier="nvme",
                delayed_param_update=True,
            ),
        )
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
            engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
        )
        history = []
        for step in range(STEPS):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            engine.train_step(ids, tgt)
            history.append(
                (engine.param_shard.data.copy(), engine.opt_state.master.data.copy())
            )
        return history

    for history in cluster.run(fn):
        for t in range(1, STEPS):
            params_t = history[t][0]
            master_prev = history[t - 1][1][: len(params_t)]
            master_now = history[t][1][: len(params_t)]
            assert not np.array_equal(master_now, master_prev)
            np.testing.assert_array_equal(params_t, master_prev.astype(np.float32))


# -- tier topology / streams --------------------------------------------------

LINK = InterconnectSpec(name="test-link", bandwidth_bytes_per_s=100.0, latency_s=1.0)


def test_wire_seconds_alpha_beta():
    assert wire_seconds(LINK, 0) == 0.0
    assert wire_seconds(LINK, 100) == pytest.approx(2.0)  # 1s alpha + 1s bytes


def test_tier_and_topology_validation():
    with pytest.raises(ValueError):
        Tier("tape", 10)
    with pytest.raises(ValueError):
        Tier("host", 0)
    with pytest.raises(ValueError):
        TierTopology(tiers=(Tier("host", 10, LINK),))  # must start at device
    with pytest.raises(ValueError):
        TierTopology(tiers=(Tier("device", 10, LINK),))  # device has no link
    with pytest.raises(ValueError):
        TierTopology(tiers=(Tier("device", 10), Tier("host", 10)))  # needs a link
    with pytest.raises(ValueError):
        TierTopology(tiers=(Tier("device", 10), Tier("device", 10)))


def test_tier_topology_from_cluster_is_hardware_truth():
    topo = ClusterTopology.for_world_size(1)
    tiers = TierTopology.from_cluster(topo)
    assert [t.name for t in tiers.tiers] == ["device", "host", "nvme"]
    assert tiers.tier("device").capacity_bytes == topo.node.gpu.memory_bytes
    assert tiers.tier("host").capacity_bytes == topo.host_bytes_per_gpu
    assert tiers.tier("nvme").capacity_bytes == topo.nvme_bytes_per_gpu
    assert (tiers.depth("device"), tiers.depth("host"), tiers.depth("nvme")) == (0, 1, 2)
    # a device<->NVMe transfer crosses PCIe then the drive link
    assert [t.name for t in tiers.path("nvme")] == ["host", "nvme"]
    nb = 1 << 20
    assert tiers.wire_seconds_to("nvme", nb) == pytest.approx(
        wire_seconds(tiers.tier("host").link, nb)
        + wire_seconds(tiers.tier("nvme").link, nb)
    )
    assert tiers.wire_seconds_to("device", nb) == 0.0
    # the drive array, not PCIe, bottlenecks the NVMe path
    assert tiers.bottleneck_link("nvme") is tiers.tier("nvme").link
    assert tiers.bottleneck_link("device") is None
    with pytest.raises(KeyError):
        tiers.tier("tape")


def test_tier_stream_custom_lanes_record_in_ledger():
    ledger = CommLedger(rank=0)
    st = TierStream(LINK, ledger=ledger, rank=0, directions=("nvme-out", "nvme-in"))
    a = st.copy_async(100, "nvme-out", submit_t=0.0)
    b = st.copy_async(100, "nvme-out", submit_t=0.5)  # serializes behind a
    c = st.copy_async(100, "nvme-in", submit_t=0.0)  # opposite lane: no contention
    assert (a.start_t, a.done_t) == (0.0, 2.0)
    assert (b.start_t, b.done_t) == (2.0, 4.0)
    assert (c.start_t, c.done_t) == (0.0, 2.0)
    assert ledger.by_op() == {"nvme-out": 200.0, "nvme-in": 100.0}
    with pytest.raises(ValueError):
        st.copy_async(10, "d2h")  # not this stream's lanes
    st.reset()
    assert st.handles == [] and st.lane_free_t("nvme-out") == 0.0


# -- memory-centric tiling ----------------------------------------------------


def test_tile_plan_covers_unit_exactly():
    plan = TilePlan(unit_numel=10, tile_numel=4)
    assert plan.n_tiles == 3 and plan.is_tiled
    assert plan.ranges() == [(0, 4), (4, 8), (8, 10)]
    assert sum(hi - lo for lo, hi in plan.ranges()) == plan.unit_numel
    assert not TilePlan(unit_numel=4, tile_numel=4).is_tiled
    with pytest.raises(ValueError):
        TilePlan(unit_numel=0, tile_numel=4)
    with pytest.raises(ValueError):
        TilePlan(unit_numel=4, tile_numel=0)


def test_plan_unit_tiles_caps_resident_bytes():
    assert plan_unit_tiles(100, 4, None).n_tiles == 1  # no cap: one tile
    assert plan_unit_tiles(100, 4, 10**9).n_tiles == 1  # unit fits
    plan = plan_unit_tiles(100, 4, 80)  # 20 elements per tile
    assert plan.tile_numel == 20 and plan.n_tiles == 5
    assert plan_unit_tiles(100, 4, 1).tile_numel == 1  # floor at one element


def test_tiling_bounds_device_residency_in_meta_mode():
    """Stage 3 + paged params: the device never holds a full unit — the
    modeled peak charges tile-sized staging only, while NVMe accounts the
    parameter and optimizer shards."""

    def build(inf):
        ctx = virtual_rank_context(2, gpu=GPU)
        zero = ZeROConfig(stage=3, memory_defrag=False, infinity=inf)
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, meta=True
        )
        itemsize = np.dtype(model.dtype).itemsize
        t_ids = Tensor.meta((2, 16), np.int64, device=ctx.device)
        engine.train_step(t_ids, t_ids)
        return ctx, engine, itemsize

    inf = InfinityConfig(
        optimizer_tier="nvme", grad_tier="host", param_tier="nvme", tile_bytes=1024
    )
    ctx_dev, eng_dev, _ = build(None)
    ctx_inf, eng_inf, itemsize = build(inf)
    assert ctx_dev.nvme.allocated_bytes == 0 and ctx_dev.host.allocated_bytes == 0
    # NVMe holds the fp32 optimizer state and the fp16 parameter shard.
    assert ctx_inf.nvme.allocated_bytes == (12 + itemsize) * eng_inf.part_numel
    # host holds the gradient shard
    assert ctx_inf.host.allocated_bytes == itemsize * eng_inf.part_numel
    # and the device working set shrank versus all-device stage 3
    assert ctx_inf.device.max_allocated_bytes < ctx_dev.device.max_allocated_bytes


# -- configuration validation -------------------------------------------------


def test_infinity_config_rejects_invalid_combinations():
    with pytest.raises(ValueError):
        InfinityConfig(optimizer_tier="tape")
    with pytest.raises(ValueError):
        InfinityConfig(optimizer_tier="device", grad_tier="host")
    with pytest.raises(ValueError):
        InfinityConfig(optimizer_tier="device", grad_tier="device",
                       delayed_param_update=True)
    with pytest.raises(ValueError):
        InfinityConfig(prefetch_depth=0)
    with pytest.raises(ValueError):
        InfinityConfig(tile_bytes=0, param_tier="nvme")
    with pytest.raises(ValueError):
        InfinityConfig(tile_bytes=1024)  # tiling needs an off-device param tier
    with pytest.raises(ValueError):
        InfinityConfig(opt_chunk_bytes=0)
    label = InfinityConfig(
        optimizer_tier="nvme", grad_tier="host", param_tier="nvme",
        tile_bytes=1 << 20, delayed_param_update=True,
    ).label
    assert label == "inf[os@nvme,g@host,p@nvme,tile1M,DPU]"


def test_zero_config_gates_infinity_by_stage():
    with pytest.raises(ValueError):
        ZeROConfig(stage=0, infinity=InfinityConfig())
    with pytest.raises(ValueError):  # streamed grads need stage >= 2
        ZeROConfig(stage=1, infinity=InfinityConfig(grad_tier="host"))
    with pytest.raises(ValueError):  # paged params need stage 3
        ZeROConfig(stage=2, infinity=InfinityConfig(param_tier="nvme"))
    with pytest.raises(ValueError):  # legacy offload flags are exclusive
        ZeROConfig(stage=2, offload_optimizer=True,
                   infinity=InfinityConfig(grad_tier="device"))
    label = ZeROConfig(
        stage=3, infinity=InfinityConfig(param_tier="nvme")
    ).label
    assert "inf[" in label


def test_engine_rejects_offload_plus_infinity():
    ctx = virtual_rank_context(2, gpu=GPU)
    with pytest.raises(ValueError, match="mutually exclusive"):
        build_model_and_engine(
            ctx, CFG, ZeROConfig(stage=2), dp_group=ctx.world, meta=True,
            engine_config=EngineConfig(
                offload=OffloadConfig(),
                infinity=InfinityConfig(grad_tier="device"),
            ),
        )


def test_unpartitioned_engine_rejects_infinity():
    ctx = virtual_rank_context(1, gpu=GPU)
    with pytest.raises(ValueError):
        build_model_and_engine(
            ctx, CFG, ZeROConfig(stage=0), dp_group=ctx.world, meta=True,
            engine_config=EngineConfig(
                infinity=InfinityConfig(grad_tier="device")
            ),
        )


# -- checkpoints: tier-placement-independent ----------------------------------


def test_checkpoint_roundtrip_is_tier_independent(tmp_path, all_device_baseline):
    """NVMe-resident optimizer state checkpoints and resumes bitwise — into
    an infinity engine or an all-device one."""
    root = tmp_path / "ckpts"
    inf = InfinityConfig(optimizer_tier="nvme", grad_tier="host")

    def run_phase(resume, **zero_kw):
        cluster = Cluster(2, gpu=GPU, timeout_s=60.0)

        def fn(ctx):
            zero = ZeROConfig(
                stage=2, checkpoint_activations=False, memory_defrag=False, **zero_kw
            )
            model, engine = build_model_and_engine(
                ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
                engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
            )
            if resume:
                load_checkpoint_resharded(engine, root / "step2")
            losses = []
            for step in range(engine.step_count, STEPS):
                ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
                losses.append(engine.train_step(ids, tgt).loss)
                if not resume and engine.step_count == 2:
                    save_checkpoint(engine, root / "step2")
            return losses, engine.opt_state.master.data.copy()

        return cluster.run(fn)

    run_phase(resume=False, infinity=inf)  # 2 steps on tiers, then save
    resumed_inf = run_phase(resume=True, infinity=inf)
    resumed_dev = run_phase(resume=True)  # same checkpoint, all-device
    ref = all_device_baseline[2]
    for rank in range(2):
        assert resumed_inf[rank][0] == ref[rank][0][2:]
        assert resumed_dev[rank][0] == ref[rank][0][2:]
        np.testing.assert_array_equal(resumed_inf[rank][1], ref[rank][1])
        np.testing.assert_array_equal(resumed_dev[rank][1], ref[rank][1])


# -- composition with fault injection / elastic recovery ----------------------


@pytest.mark.faults
def test_infinity_composes_with_elastic_recovery(tmp_path):
    """Kill one of three ranks mid-run with optimizer state on NVMe; the
    supervisor re-forms a 2-rank world from the durable checkpoint and the
    recovered trajectory matches an uninterrupted 2-rank resume, bitwise."""
    total_steps, ckpt_every = 6, 2
    root = tmp_path / "ckpts"
    inf = InfinityConfig(optimizer_tier="nvme", grad_tier="host")

    def make_fn(resume_root):
        def train_fn(ctx):
            zero = ZeROConfig(
                stage=2, checkpoint_activations=False, memory_defrag=False,
                infinity=inf,
            )
            model, engine = build_model_and_engine(
                ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
                engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
            )
            latest = latest_checkpoint(resume_root)
            if latest is not None:
                load_checkpoint_resharded(engine, latest)
            losses = []
            for step in range(engine.step_count, total_steps):
                ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
                losses.append(engine.train_step(ids, tgt).loss)
                if engine.step_count % ckpt_every == 0:
                    save_checkpoint(engine, root / f"step{engine.step_count}")
            return losses, engine.opt_state.master.data.copy()

        return train_fn

    plan = FaultPlan().kill_rank(1, at_step=4)
    sup = Supervisor(3, gpu=GPU, fault_plan=plan, timeout_s=15.0)
    report = sup.run(make_fn(root))
    assert report.restarts == 1 and report.final_world_size == 2

    def ref_resume(ctx):
        zero = ZeROConfig(
            stage=2, checkpoint_activations=False, memory_defrag=False, infinity=inf,
        )
        model, engine = build_model_and_engine(
            ctx, CFG, zero, dp_group=ctx.world, dtype=np.float32, seed=3,
            engine_config=EngineConfig(adam=AdamHyperparams(lr=1e-3)),
        )
        load_checkpoint_resharded(engine, root / "step2")
        losses = []
        for step in range(engine.step_count, total_steps):
            ids, tgt = CORPUS.sample_batch(2, 16, rank=ctx.rank, step=step)
            losses.append(engine.train_step(ids, tgt).loss)
        return losses, engine.opt_state.master.data.copy()

    ref = Cluster(2, gpu=GPU, timeout_s=15.0).run(ref_resume)
    for rank in range(2):
        assert report.results[rank][0] == ref[rank][0]
        np.testing.assert_array_equal(report.results[rank][1], ref[rank][1])


# -- cost model ---------------------------------------------------------------


def test_infinity_cost_model_tracks_simulated_timeline():
    """Acceptance bound: the multi-tier closed form stays within 5% of the
    simulated timeline across placements, paged gathers, tiling, and DPU."""
    from repro.experiments.infinity_sweep import run_time

    rows = run_time()
    assert len(rows) == 6
    for row in rows:
        assert row.rel_err <= 0.05, row


def test_tier_state_bytes_accounts_every_tier():
    from repro.analysis.memory_model import model_state_bytes, tier_state_bytes

    psi, nd = 1_000_000.0, 4
    inf = InfinityConfig(optimizer_tier="nvme", grad_tier="host", param_tier="nvme")
    tiers = tier_state_bytes(psi, nd=nd, stage=3, infinity=inf)
    assert tiers["nvme"] == pytest.approx(12 * psi / nd + 2 * psi / nd)
    assert tiers["host"] == pytest.approx(2 * psi / nd)
    # every model-state byte lands on exactly one tier
    all_device = model_state_bytes(psi, nd=nd, stage=3)
    assert sum(tiers.values()) == pytest.approx(all_device)
